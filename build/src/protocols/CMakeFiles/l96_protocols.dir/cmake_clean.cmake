file(REMOVE_RECURSE
  "CMakeFiles/l96_protocols.dir/eth.cc.o"
  "CMakeFiles/l96_protocols.dir/eth.cc.o.d"
  "CMakeFiles/l96_protocols.dir/ip.cc.o"
  "CMakeFiles/l96_protocols.dir/ip.cc.o.d"
  "CMakeFiles/l96_protocols.dir/lance.cc.o"
  "CMakeFiles/l96_protocols.dir/lance.cc.o.d"
  "CMakeFiles/l96_protocols.dir/rpc/bid.cc.o"
  "CMakeFiles/l96_protocols.dir/rpc/bid.cc.o.d"
  "CMakeFiles/l96_protocols.dir/rpc/blast.cc.o"
  "CMakeFiles/l96_protocols.dir/rpc/blast.cc.o.d"
  "CMakeFiles/l96_protocols.dir/rpc/chan.cc.o"
  "CMakeFiles/l96_protocols.dir/rpc/chan.cc.o.d"
  "CMakeFiles/l96_protocols.dir/rpc/mselect.cc.o"
  "CMakeFiles/l96_protocols.dir/rpc/mselect.cc.o.d"
  "CMakeFiles/l96_protocols.dir/rpc/vchan.cc.o"
  "CMakeFiles/l96_protocols.dir/rpc/vchan.cc.o.d"
  "CMakeFiles/l96_protocols.dir/rpc/xrpctest.cc.o"
  "CMakeFiles/l96_protocols.dir/rpc/xrpctest.cc.o.d"
  "CMakeFiles/l96_protocols.dir/stack_code.cc.o"
  "CMakeFiles/l96_protocols.dir/stack_code.cc.o.d"
  "CMakeFiles/l96_protocols.dir/tcp.cc.o"
  "CMakeFiles/l96_protocols.dir/tcp.cc.o.d"
  "CMakeFiles/l96_protocols.dir/tcptest.cc.o"
  "CMakeFiles/l96_protocols.dir/tcptest.cc.o.d"
  "CMakeFiles/l96_protocols.dir/usc.cc.o"
  "CMakeFiles/l96_protocols.dir/usc.cc.o.d"
  "CMakeFiles/l96_protocols.dir/vnet.cc.o"
  "CMakeFiles/l96_protocols.dir/vnet.cc.o.d"
  "libl96_protocols.a"
  "libl96_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l96_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
