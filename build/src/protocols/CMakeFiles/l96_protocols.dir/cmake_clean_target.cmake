file(REMOVE_RECURSE
  "libl96_protocols.a"
)
