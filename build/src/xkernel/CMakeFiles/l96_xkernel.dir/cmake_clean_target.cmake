file(REMOVE_RECURSE
  "libl96_xkernel.a"
)
