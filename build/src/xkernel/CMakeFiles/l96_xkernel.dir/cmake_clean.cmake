file(REMOVE_RECURSE
  "CMakeFiles/l96_xkernel.dir/event.cc.o"
  "CMakeFiles/l96_xkernel.dir/event.cc.o.d"
  "CMakeFiles/l96_xkernel.dir/message.cc.o"
  "CMakeFiles/l96_xkernel.dir/message.cc.o.d"
  "CMakeFiles/l96_xkernel.dir/process.cc.o"
  "CMakeFiles/l96_xkernel.dir/process.cc.o.d"
  "CMakeFiles/l96_xkernel.dir/simalloc.cc.o"
  "CMakeFiles/l96_xkernel.dir/simalloc.cc.o.d"
  "libl96_xkernel.a"
  "libl96_xkernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l96_xkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
