# Empty compiler generated dependencies file for l96_xkernel.
# This may be replaced when dependencies are built.
