// Fuzz-style negative tests for inbound frame parsing: single-byte
// corruption swept across every header offset (both stacks, end-to-end
// integrity on), truncated and oversized frames straight into the driver,
// and crafted BLAST headers whose checksums are valid but whose fields
// lie — each must be rejected by a bounds check, never by a crash.
#include <gtest/gtest.h>

#include <vector>

#include "harness/soak.h"
#include "net/world.h"
#include "protocols/wire_format.h"

namespace l96 {
namespace {

// --- corruption offset sweep ------------------------------------------------

harness::SoakSpec sweep_spec(net::StackKind kind, std::uint32_t offset) {
  harness::SoakSpec s;
  s.kind = kind;
  s.roundtrips = 12;
  s.msg_bytes = 32;
  s.plan.seed = 100 + offset;
  // Three mid-run frames per direction corrupted at the same byte offset;
  // frames 0-5 are left alone so connection setup completes.
  for (int p = 0; p < 2; ++p) {
    for (std::uint64_t ix : {6, 9, 12}) {
      s.plan.scheduled[p].push_back(
          {.frame_ix = ix, .kind = net::FaultKind::kCorrupt, .arg = offset,
           .has_arg = true});
    }
  }
  return s;
}

TEST(FuzzFrames, TcpCorruptionSweptAcrossHeaderOffsets) {
  // Offsets 0-63 cover the eth (0-13), IP (14-33), and TCP (34-53) headers
  // plus the start of the payload.  Whatever byte is hit, the stacks must
  // detect it (address check, IP checksum, TCP checksum), recover by
  // retransmission, and deliver every payload byte intact.
  for (std::uint32_t off = 0; off < 64; ++off) {
    harness::SoakRunner runner(sweep_spec(net::StackKind::kTcpIp, off));
    const auto r = runner.run();
    EXPECT_TRUE(r.ok()) << "offset " << off << ": " << r.summary();
    EXPECT_EQ(r.integrity_failures, 0u) << "offset " << off;
  }
}

TEST(FuzzFrames, RpcCorruptionSweptAcrossHeaderOffsets) {
  // Offsets 0-63 cover eth (0-13), BLAST (14-29), BID (30-33), CHAN
  // (34-41) and the argument bytes.  The BLAST checksum covers everything
  // past eth, so every hit is either an address reject or a checksum
  // reject; CHAN retries carry the call through.
  for (std::uint32_t off = 0; off < 64; ++off) {
    harness::SoakRunner runner(sweep_spec(net::StackKind::kRpc, off));
    const auto r = runner.run();
    EXPECT_TRUE(r.ok()) << "offset " << off << ": " << r.summary();
    EXPECT_EQ(r.integrity_failures, 0u) << "offset " << off;
  }
}

// --- truncated / oversized frames -------------------------------------------

std::vector<std::uint8_t> eth_frame(const proto::MacAddr& dst,
                                    const proto::MacAddr& src,
                                    std::uint16_t ethertype,
                                    std::size_t total_len) {
  std::vector<std::uint8_t> f(std::max<std::size_t>(total_len, 14), 0xC3);
  std::copy(dst.begin(), dst.end(), f.begin());
  std::copy(src.begin(), src.end(), f.begin() + 6);
  f[12] = static_cast<std::uint8_t>(ethertype >> 8);
  f[13] = static_cast<std::uint8_t>(ethertype & 0xFF);
  f.resize(total_len);
  return f;
}

template <typename Fixture>
void deliver_truncations(Fixture& world, std::uint16_t ethertype) {
  const auto cmac = world.client().address().mac;
  const auto smac = world.server().address().mac;
  for (std::size_t len = 0; len <= 60; ++len) {
    // Pure garbage of every length.
    world.client().deliver(std::vector<std::uint8_t>(len, 0xA5));
    // A valid eth prefix whose upper-layer headers are cut short: this
    // penetrates to the IP/BLAST length checks instead of the eth ones.
    world.client().deliver(eth_frame(cmac, smac, ethertype, len));
    world.server().deliver(eth_frame(smac, cmac, ethertype, len));
  }
}

TEST(FuzzFrames, TcpStackSurvivesTruncatedFrames) {
  net::World world(net::StackKind::kTcpIp, code::StackConfig::Std(),
                   code::StackConfig::Std());
  world.start(1000);
  ASSERT_TRUE(world.run_until_roundtrips(3));
  deliver_truncations(world, proto::kEtherTypeIp);
  // The ping-pong still makes progress afterwards.
  const auto rt = world.client_roundtrips();
  EXPECT_TRUE(world.run_until_roundtrips(rt + 3, 60'000'000));
}

TEST(FuzzFrames, RpcStackSurvivesTruncatedFrames) {
  net::World world(net::StackKind::kRpc, code::StackConfig::Std(),
                   code::StackConfig::All());
  world.start(1000);
  ASSERT_TRUE(world.run_until_roundtrips(3));
  const auto bad_before = world.client().blast()->bad_frames();
  deliver_truncations(world, proto::kEtherTypeBlast);
  // Frames with a valid eth header but fewer than 16 BLAST header bytes
  // are counted as bad, not silently eaten.
  EXPECT_GT(world.client().blast()->bad_frames(), bad_before);
  const auto rt = world.client_roundtrips();
  EXPECT_TRUE(world.run_until_roundtrips(rt + 3, 60'000'000));
}

TEST(FuzzFrames, OversizedFrameDroppedByDriver) {
  net::World world(net::StackKind::kTcpIp, code::StackConfig::Std(),
                   code::StackConfig::Std());
  world.start(1000);
  ASSERT_TRUE(world.run_until_roundtrips(2));
  const auto dropped = world.client().lance().rx_dropped();
  world.client().deliver(std::vector<std::uint8_t>(1600, 0x42));
  EXPECT_EQ(world.client().lance().rx_dropped(), dropped + 1);
  const auto rt = world.client_roundtrips();
  EXPECT_TRUE(world.run_until_roundtrips(rt + 3, 60'000'000));
}

// --- crafted BLAST headers with valid checksums -----------------------------

class BlastFuzz : public ::testing::Test {
 protected:
  BlastFuzz()
      : world(net::StackKind::kRpc, code::StackConfig::Std(),
              code::StackConfig::All()) {
    world.start(1000);
    EXPECT_TRUE(world.run_until_roundtrips(2));
  }

  /// An eth+BLAST frame with a correct checksum over (header, payload):
  /// it passes the integrity check, so only the field validation can
  /// reject it.
  void deliver_blast(std::uint32_t msg_id, std::uint16_t ix,
                     std::uint16_t nfrags, std::uint32_t total_len,
                     std::uint16_t flags, std::size_t payload_bytes,
                     bool break_checksum = false) {
    const auto& cmac = world.client().address().mac;
    const auto& smac = world.server().address().mac;
    std::vector<std::uint8_t> f;
    f.insert(f.end(), cmac.begin(), cmac.end());
    f.insert(f.end(), smac.begin(), smac.end());
    f.push_back(0x88);
    f.push_back(0xB5);
    std::array<std::uint8_t, proto::Blast::kHeaderBytes> bh{};
    proto::put_be32(bh, 0, msg_id);
    proto::put_be16(bh, 4, ix);
    proto::put_be16(bh, 6, nfrags);
    proto::put_be32(bh, 8, total_len);
    proto::put_be16(bh, 12, flags);
    std::vector<std::uint8_t> payload(payload_bytes, 0x6B);
    std::uint16_t ck = proto::inet_checksum(
        payload, proto::checksum_accumulate(std::span(bh.data(), 14)));
    if (break_checksum) ck ^= 0x0F0F;
    proto::put_be16(bh, 14, ck);
    f.insert(f.end(), bh.begin(), bh.end());
    f.insert(f.end(), payload.begin(), payload.end());
    f.resize(std::max<std::size_t>(f.size(), 64), 0);
    world.client().deliver(f);
  }

  proto::Blast& blast() { return *world.client().blast(); }
  net::World world;
};

TEST_F(BlastFuzz, HugeFragmentCountRejected) {
  const auto before = blast().bad_frames();
  // 0xFFFF fragments would reserve gigabytes in the reassembly map.
  deliver_blast(0x9001, 0, 0xFFFF, 0x00FFFFFF, 0, 40);
  EXPECT_EQ(blast().bad_frames(), before + 1);
  EXPECT_EQ(blast().reassemblies_pending(), 0u);
}

TEST_F(BlastFuzz, FragmentIndexBeyondCountRejected) {
  const auto before = blast().bad_frames();
  deliver_blast(0x9002, /*ix=*/5, /*nfrags=*/3, 3 * 1024 - 100, 0, 40);
  EXPECT_EQ(blast().bad_frames(), before + 1);
  EXPECT_EQ(blast().reassemblies_pending(), 0u);
}

TEST_F(BlastFuzz, TotalLenInconsistentWithFragmentCountRejected) {
  const auto before = blast().bad_frames();
  // 3 fragments of <=1024 bytes cannot carry 10 bytes total (the sender
  // would have used 1), nor 100000 (needs 98 fragments).
  deliver_blast(0x9003, 0, 3, 10, 0, 10);
  deliver_blast(0x9004, 0, 3, 100000, 0, 40);
  EXPECT_EQ(blast().bad_frames(), before + 2);
  EXPECT_EQ(blast().reassemblies_pending(), 0u);
}

TEST_F(BlastFuzz, SingleFragmentOverPayloadLimitRejected) {
  const auto before = blast().bad_frames();
  deliver_blast(0x9005, 0, 1, 5000, 0, 40);
  EXPECT_EQ(blast().bad_frames(), before + 1);
}

TEST_F(BlastFuzz, OddNackLengthRejected) {
  const auto before = blast().bad_frames();
  deliver_blast(0x9006, 0, 0, 7, proto::Blast::kFlagNack, 7);
  EXPECT_EQ(blast().bad_frames(), before + 1);
}

TEST_F(BlastFuzz, ValidHeaderBadChecksumCountedSeparately) {
  const auto frames = blast().bad_frames();
  const auto sums = blast().bad_checksum_drops();
  deliver_blast(0x9007, 0, 1, 40, 0, 40, /*break_checksum=*/true);
  EXPECT_EQ(blast().bad_frames(), frames);
  EXPECT_EQ(blast().bad_checksum_drops(), sums + 1);
}

TEST_F(BlastFuzz, ConflictingRetransmitMetadataRejected) {
  // Two fragments of one msg_id that disagree about nfrags/total_len: the
  // second must not resize or clobber the first's reassembly state.
  const auto before = blast().bad_frames();
  deliver_blast(0x9008, 0, 3, 2500, 0, 1024);
  EXPECT_EQ(blast().reassemblies_pending(), 1u);
  deliver_blast(0x9008, 1, 4, 3500, 0, 1024);
  EXPECT_EQ(blast().bad_frames(), before + 1);
  EXPECT_EQ(blast().reassemblies_pending(), 1u);
  blast().flush();  // do not leak the half-built reassembly (or its timer)
  EXPECT_EQ(blast().reassemblies_pending(), 0u);
}

}  // namespace
}  // namespace l96
