// Tests for the message tool: header push/pop, sharing, refresh semantics.
#include <gtest/gtest.h>

#include <deque>
#include <numeric>

#include "xkernel/message.h"

namespace l96::xk {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> xs) {
  std::vector<std::uint8_t> v;
  for (int x : xs) v.push_back(static_cast<std::uint8_t>(x));
  return v;
}

class MessageTest : public ::testing::Test {
 protected:
  SimAlloc arena;
};

TEST_F(MessageTest, FreshMessageZeroed) {
  Message m(arena, 32, 8);
  EXPECT_EQ(m.length(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(m.data()[i], 0);
}

TEST_F(MessageTest, PushPopRoundtrip) {
  Message m(arena, 32, 4);
  auto h = bytes({1, 2, 3, 4, 5});
  m.push(h);
  EXPECT_EQ(m.length(), 9u);
  std::array<std::uint8_t, 5> out{};
  m.pop(out);
  EXPECT_TRUE(std::equal(h.begin(), h.end(), out.begin()));
  EXPECT_EQ(m.length(), 4u);
}

TEST_F(MessageTest, NestedHeadersPopInReverse) {
  Message m(arena, 64, 0);
  m.push(bytes({0xAA}));
  m.push(bytes({0xBB, 0xBB}));
  m.push(bytes({0xCC, 0xCC, 0xCC}));
  std::array<std::uint8_t, 3> h3{};
  std::array<std::uint8_t, 2> h2{};
  std::array<std::uint8_t, 1> h1{};
  m.pop(h3);
  m.pop(h2);
  m.pop(h1);
  EXPECT_EQ(h3[0], 0xCC);
  EXPECT_EQ(h2[0], 0xBB);
  EXPECT_EQ(h1[0], 0xAA);
  EXPECT_TRUE(m.empty());
}

TEST_F(MessageTest, HeadroomExhaustionThrows) {
  Message m(arena, 4, 0);
  EXPECT_THROW(m.push(bytes({1, 2, 3, 4, 5})), std::length_error);
}

TEST_F(MessageTest, PopUnderflowThrows) {
  Message m(arena, 8, 2);
  std::array<std::uint8_t, 3> out{};
  EXPECT_THROW(m.pop(out), std::length_error);
}

TEST_F(MessageTest, PeekDoesNotConsume) {
  Message m(arena, 8, 4);
  m.data()[2] = 42;
  std::array<std::uint8_t, 1> out{};
  m.peek(out, 2);
  EXPECT_EQ(out[0], 42);
  EXPECT_EQ(m.length(), 4u);
  EXPECT_THROW(m.peek(out, 4), std::length_error);
}

TEST_F(MessageTest, AppendAndTailroom) {
  Message m(arena, 4, 2);
  EXPECT_THROW(m.append(bytes({1})), std::length_error);  // no tailroom
  Message m2(arena, 8, 0);
  m2.push(bytes({9}));  // len 1, 7 headroom left... appended at tail
  // After push, off=7 len=1; tail space = 0.
  EXPECT_THROW(m2.append(bytes({1})), std::length_error);
}

TEST_F(MessageTest, TrimFrontBack) {
  Message m(arena, 0, 10);
  std::iota(m.data(), m.data() + 10, 0);
  m.trim_front(3);
  EXPECT_EQ(m.length(), 7u);
  EXPECT_EQ(m.data()[0], 3);
  m.trim_back(2);
  EXPECT_EQ(m.length(), 5u);
  EXPECT_THROW(m.trim_front(6), std::length_error);
  EXPECT_THROW(m.trim_back(6), std::length_error);
}

TEST_F(MessageTest, CloneSharesBuffer) {
  Message m(arena, 8, 4);
  Message c = m.clone();
  EXPECT_EQ(m.refcount(), 2);
  EXPECT_EQ(c.sim_addr(), m.sim_addr());
  m.data()[0] = 7;
  EXPECT_EQ(c.data()[0], 7);  // shared storage
}

TEST_F(MessageTest, SplitSharesBufferAndPartitions) {
  Message m(arena, 0, 10);
  std::iota(m.data(), m.data() + 10, 0);
  Message tail = m.split(6);
  EXPECT_EQ(m.length(), 6u);
  EXPECT_EQ(tail.length(), 4u);
  EXPECT_EQ(tail.data()[0], 6);
  EXPECT_EQ(m.refcount(), 2);
  EXPECT_THROW(m.split(7), std::length_error);
}

TEST_F(MessageTest, JoinConcatenates) {
  Message a(arena, 0, 3);
  Message b(arena, 0, 2);
  a.data()[0] = 1;
  a.data()[2] = 3;
  b.data()[1] = 5;
  Message j = Message::join(arena, a, b);
  EXPECT_EQ(j.length(), 5u);
  EXPECT_EQ(j.data()[0], 1);
  EXPECT_EQ(j.data()[2], 3);
  EXPECT_EQ(j.data()[4], 5);
}

TEST_F(MessageTest, SimAddrTracksView) {
  Message m(arena, 16, 8);
  const SimAddr base = m.sim_addr();
  m.push(bytes({1, 2}));
  EXPECT_EQ(m.sim_addr(), base - 2);
  EXPECT_EQ(m.sim_addr_at(3), base + 1);
}

TEST_F(MessageTest, RefreshShortcutReusesSoleBuffer) {
  Message m(arena, 16, 32);
  const SimAddr addr = m.sim_addr_at(0) - 16;  // buffer base
  const auto allocs_before = arena.alloc_count();
  EXPECT_TRUE(m.refresh(arena, 16, 32, /*shortcut=*/true));
  EXPECT_EQ(arena.alloc_count(), allocs_before);  // no allocator traffic
  EXPECT_EQ(m.sim_addr() - 16, addr);             // same buffer
}

TEST_F(MessageTest, RefreshSlowPathReallocates) {
  Message m(arena, 16, 32);
  const auto allocs_before = arena.alloc_count();
  EXPECT_FALSE(m.refresh(arena, 16, 32, /*shortcut=*/false));
  EXPECT_EQ(arena.alloc_count(), allocs_before + 1);
}

TEST_F(MessageTest, RefreshWithSharedBufferCannotShortcut) {
  Message m(arena, 16, 32);
  Message keep = m.clone();
  EXPECT_FALSE(m.refresh(arena, 16, 32, /*shortcut=*/true));
  // The clone still sees the old buffer.
  EXPECT_EQ(keep.refcount(), 1);
}

TEST_F(MessageTest, RefreshGrowsWhenCapacityInsufficient) {
  Message m(arena, 8, 8);
  EXPECT_FALSE(m.refresh(arena, 64, 256, /*shortcut=*/true));
  EXPECT_EQ(m.length(), 256u);
  m.push(std::vector<std::uint8_t>(64));  // full headroom available
}

TEST_F(MessageTest, EmptyMessageThrows) {
  Message m;
  EXPECT_THROW(m.data(), std::logic_error);
  EXPECT_THROW(m.sim_addr(), std::logic_error);
  EXPECT_EQ(m.refcount(), 0);
}

// --- pool ------------------------------------------------------------------

TEST_F(MessageTest, PoolAcquireRelease) {
  MsgPool pool(arena, 4, 16, 128);
  EXPECT_EQ(pool.available(), 4u);
  Message m = pool.acquire();
  EXPECT_EQ(pool.available(), 3u);
  EXPECT_EQ(m.length(), 128u);
  pool.release(std::move(m), /*shortcut=*/true);
  EXPECT_EQ(pool.available(), 4u);
  EXPECT_EQ(pool.shortcut_hits(), 1u);
}

TEST_F(MessageTest, PoolExhaustionThrows) {
  MsgPool pool(arena, 1, 8, 16);
  Message m = pool.acquire();
  EXPECT_THROW(pool.acquire(), std::runtime_error);
  pool.release(std::move(m), true);
}

TEST_F(MessageTest, PoolSlowRefreshCounts) {
  MsgPool pool(arena, 2, 8, 16);
  Message m = pool.acquire();
  pool.release(std::move(m), /*shortcut=*/false);
  EXPECT_EQ(pool.slow_refreshes(), 1u);
  EXPECT_EQ(pool.shortcut_hits(), 0u);
}

TEST_F(MessageTest, PoolSharedBufferFallsBackToSlow) {
  MsgPool pool(arena, 2, 8, 16);
  Message m = pool.acquire();
  Message ref = m.clone();  // extra reference defeats the shortcut
  pool.release(std::move(m), /*shortcut=*/true);
  EXPECT_EQ(pool.slow_refreshes(), 1u);
}

// Property: arbitrary push/pop/trim sequences preserve content equivalence
// with a reference deque.
TEST_F(MessageTest, PropertyAgainstReference) {
  Message m(arena, 256, 0);
  std::deque<std::uint8_t> ref;
  std::uint64_t seed = 31337;
  auto rnd = [&]() {
    seed = seed * 6364136223846793005ULL + 1;
    return seed >> 33;
  };
  std::size_t headroom = 256;
  for (int step = 0; step < 2000; ++step) {
    const int op = rnd() % 3;
    if (op == 0 && ref.size() < 200) {
      const std::size_t n = 1 + rnd() % 8;
      std::vector<std::uint8_t> h(n);
      for (auto& b : h) b = static_cast<std::uint8_t>(rnd());
      if (headroom >= n) {
        m.push(h);
        headroom -= n;
        ref.insert(ref.begin(), h.begin(), h.end());
      }
    } else if (op == 1 && !ref.empty()) {
      const std::size_t n = 1 + rnd() % std::min<std::size_t>(ref.size(), 8);
      std::vector<std::uint8_t> out(n);
      m.pop(out);
      headroom += n;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], ref.front());
        ref.pop_front();
      }
    } else if (op == 2 && !ref.empty()) {
      m.trim_back(1);
      ref.pop_back();
    }
    ASSERT_EQ(m.length(), ref.size());
  }
}

}  // namespace
}  // namespace l96::xk
