// Tests for trace lowering: block expansion, call sequences, terminators,
// path-inlining call elision.
#include <gtest/gtest.h>

#include <algorithm>

#include "code/image.h"
#include "code/lower.h"

namespace l96::code {
namespace {

struct Fixture {
  CodeRegistry reg;
  FnId caller, callee, lib;

  Fixture() {
    {
      Function f;
      f.name = "caller";
      f.kind = FnKind::kPath;
      f.prologue_instrs = 6;
      f.epilogue_instrs = 4;
      BasicBlock b0{"b0", BlockClass::kMainline, 20, 0, 0, 0, 1};
      BasicBlock b1{"b1", BlockClass::kError, 30, 0, 0, 0, 0};
      BasicBlock b2{"b2", BlockClass::kMainline, 10, 0, 0, 0, 0};
      f.blocks = {b0, b1, b2};
      caller = reg.add(std::move(f));
    }
    {
      Function f;
      f.name = "callee";
      f.kind = FnKind::kPath;
      f.prologue_instrs = 5;
      f.epilogue_instrs = 3;
      BasicBlock b0{"b0", BlockClass::kMainline, 16, 2, 1, 0, 0};
      f.blocks = {b0};
      callee = reg.add(std::move(f));
    }
    {
      Function f;
      f.name = "lib";
      f.kind = FnKind::kLibrary;
      f.prologue_instrs = 2;
      f.epilogue_instrs = 1;
      BasicBlock b0{"b0", BlockClass::kMainline, 8, 0, 0, 1, 0};
      f.blocks = {b0};
      lib = reg.add(std::move(f));
    }
  }

  PathTrace simple_call_trace() const {
    PathTrace t;
    Recorder rec;
    rec.enable(&t);
    rec.call(caller);
    rec.block(caller, 0);
    rec.call(callee);
    rec.block(callee, 0);
    rec.ret();
    rec.block(caller, 2);
    rec.ret();
    return t;
  }

  CodeImage image(const StackConfig& cfg,
                  std::optional<PathSpec> path = std::nullopt) const {
    ImageBuilder b(reg, cfg);
    b.set_profile(simple_call_trace());
    if (path.has_value()) b.declare_path(*path);
    return b.build();
  }
};

LowerParams no_implicit() {
  LowerParams p;
  p.implicit_load_every = 0;
  p.implicit_store_every = 0;
  return p;
}

std::size_t count_cls(const sim::MachineTrace& t, sim::InstrClass c) {
  return static_cast<std::size_t>(
      std::count_if(t.begin(), t.end(),
                    [&](const sim::MachineInstr& i) { return i.cls == c; }));
}

TEST(Lowering, InstructionBudgetMatchesDescriptors) {
  Fixture f;
  StackConfig cfg = StackConfig::Std();
  CodeImage img = f.image(cfg);
  Lowering low(f.reg, img, cfg, no_implicit());
  auto mt = low.lower(f.simple_call_trace());
  // caller prologue 6 + b0 20 + [GOT load 1 + call 1] + callee prologue 5 +
  // callee b0 16 + callee epilogue 3 (2 loads + ret) + caller b2 10 +
  // caller epilogue 4.
  EXPECT_EQ(mt.size(), 6u + 20u + 2u + 5u + 16u + 3u + 10u + 4u);
}

TEST(Lowering, CallSequenceHasGotLoadAndCall) {
  Fixture f;
  StackConfig cfg = StackConfig::Std();
  CodeImage img = f.image(cfg);
  Lowering low(f.reg, img, cfg, no_implicit());
  auto mt = low.lower(f.simple_call_trace());
  EXPECT_EQ(count_cls(mt, sim::InstrClass::kCall), 1u);
  EXPECT_EQ(count_cls(mt, sim::InstrClass::kRet), 2u);
  // The GOT load targets the callee's GOT slot.
  const auto got = img.got_addr(f.callee);
  EXPECT_TRUE(std::any_of(mt.begin(), mt.end(), [&](const auto& i) {
    return i.cls == sim::InstrClass::kLoad && i.ea == got;
  }));
}

TEST(Lowering, CloningElidesGotLoad) {
  Fixture f;
  StackConfig cfg = StackConfig::Clo();
  CodeImage img = f.image(cfg);
  Lowering low(f.reg, img, cfg, no_implicit());
  auto mt = low.lower(f.simple_call_trace());
  const auto got = img.got_addr(f.callee);
  EXPECT_FALSE(std::any_of(mt.begin(), mt.end(), [&](const auto& i) {
    return i.cls == sim::InstrClass::kLoad && i.ea == got;
  }));
}

TEST(Lowering, DeclaredStackTrafficEmitted) {
  Fixture f;
  StackConfig cfg = StackConfig::Std();
  CodeImage img = f.image(cfg);
  Lowering low(f.reg, img, cfg, no_implicit());
  auto mt = low.lower(f.simple_call_trace());
  // callee b0 declares 2 stack reads + 1 stack write; prologues add stores,
  // epilogues add loads.
  EXPECT_GE(count_cls(mt, sim::InstrClass::kLoad),
            1u /*got*/ + 2u /*stack reads*/ + 2u + 3u /*epilogues*/ - 1u);
  EXPECT_GE(count_cls(mt, sim::InstrClass::kStore), 1u);
}

TEST(Lowering, ExplicitDataRefsEmbedded) {
  Fixture f;
  StackConfig cfg = StackConfig::Std();
  CodeImage img = f.image(cfg);
  PathTrace t;
  Recorder rec;
  rec.enable(&t);
  rec.call(f.caller);
  rec.block(f.caller, 0);
  rec.load(0x8123'4560);
  rec.store(0x8123'4568);
  rec.ret();
  Lowering low(f.reg, img, cfg, no_implicit());
  auto mt = low.lower(t);
  EXPECT_TRUE(std::any_of(mt.begin(), mt.end(), [](const auto& i) {
    return i.cls == sim::InstrClass::kLoad && i.ea == 0x8123'4560;
  }));
  EXPECT_TRUE(std::any_of(mt.begin(), mt.end(), [](const auto& i) {
    return i.cls == sim::InstrClass::kStore && i.ea == 0x8123'4568;
  }));
}

TEST(Lowering, ImulsEmitted) {
  Fixture f;
  StackConfig cfg = StackConfig::Std();
  CodeImage img = f.image(cfg);
  PathTrace t;
  Recorder rec;
  rec.enable(&t);
  rec.call(f.lib);
  rec.block(f.lib, 0);
  rec.ret();
  Lowering low(f.reg, img, cfg, no_implicit());
  auto mt = low.lower(t);
  EXPECT_EQ(count_cls(mt, sim::InstrClass::kIMul), 1u);
}

TEST(Lowering, StdJumpsOverInlineErrorBlock) {
  Fixture f;
  StackConfig cfg = StackConfig::Std();
  CodeImage img = f.image(cfg);
  Lowering low(f.reg, img, cfg, no_implicit());
  auto mt = low.lower(f.simple_call_trace());
  // caller b0 -> b2 skips the inline error block: a taken branch (beyond
  // the call/ret control transfers).
  std::size_t taken_branches = 0;
  for (const auto& i : mt) {
    if (i.cls == sim::InstrClass::kCondBranch && i.taken) ++taken_branches;
  }
  EXPECT_GE(taken_branches, 1u);
}

TEST(Lowering, OutlinedMainlineFallsThrough) {
  Fixture f;
  StackConfig cfg = StackConfig::Out();
  CodeImage img = f.image(cfg);
  Lowering low(f.reg, img, cfg, no_implicit());
  auto mt = low.lower(f.simple_call_trace());
  std::size_t taken_cond = 0;
  for (const auto& i : mt) {
    if (i.cls == sim::InstrClass::kCondBranch && i.taken) ++taken_cond;
  }
  // With outlining (and call slack adjacency) mainline blocks are adjacent:
  // strictly fewer taken conditional branches than STD.
  Lowering low_std(f.reg, f.image(StackConfig::Std()), cfg, no_implicit());
  // NOTE: compare against the STD image lowered with STD config.
  StackConfig std_cfg = StackConfig::Std();
  CodeImage std_img = f.image(std_cfg);
  Lowering l2(f.reg, std_img, std_cfg, no_implicit());
  auto mt_std = l2.lower(f.simple_call_trace());
  std::size_t taken_std = 0;
  for (const auto& i : mt_std) {
    if (i.cls == sim::InstrClass::kCondBranch && i.taken) ++taken_std;
  }
  EXPECT_LT(taken_cond, taken_std);
}

TEST(Lowering, ExecutedErrorBlockReachesOutlinedAddress) {
  Fixture f;
  StackConfig cfg = StackConfig::Out();
  CodeImage img = f.image(cfg);
  PathTrace t;
  Recorder rec;
  rec.enable(&t);
  rec.call(f.caller);
  rec.block(f.caller, 0);
  rec.block(f.caller, 1);  // the error block fires
  rec.block(f.caller, 2);
  rec.ret();
  Lowering low(f.reg, img, cfg, no_implicit());
  auto mt = low.lower(t);
  const auto& err = img.placement(f.caller, false).blocks[1];
  EXPECT_TRUE(std::any_of(mt.begin(), mt.end(), [&](const auto& i) {
    return i.pc >= err.addr && i.pc < err.end();
  }));
}

TEST(Lowering, PathInliningRemovesInternalCallOverhead) {
  Fixture f;
  StackConfig pin = StackConfig::Pin();
  CodeImage img = f.image(pin, PathSpec{"p", {f.caller, f.callee}});
  Lowering low(f.reg, img, pin, no_implicit());
  auto mt = low.lower(f.simple_call_trace());
  EXPECT_EQ(count_cls(mt, sim::InstrClass::kCall), 0u);  // internal call gone
  EXPECT_EQ(count_cls(mt, sim::InstrClass::kRet), 1u);   // composite return
  // Callee prologue/epilogue elided: fewer instructions than OUT.
  StackConfig out = StackConfig::Out();
  CodeImage oimg = f.image(out);
  auto mt_out = Lowering(f.reg, oimg, out, no_implicit())
                    .lower(f.simple_call_trace());
  EXPECT_LT(mt.size(), mt_out.size());
}

TEST(Lowering, LibraryCallInsidePathStaysReal) {
  Fixture f;
  StackConfig pin = StackConfig::Pin();
  CodeImage img = f.image(pin, PathSpec{"p", {f.caller, f.callee}});
  PathTrace t;
  Recorder rec;
  rec.enable(&t);
  rec.call(f.caller);
  rec.block(f.caller, 0);
  rec.call(f.lib);  // library: never inlined
  rec.block(f.lib, 0);
  rec.ret();
  rec.block(f.caller, 2);
  rec.ret();
  Lowering low(f.reg, img, pin, no_implicit());
  auto mt = low.lower(t);
  EXPECT_EQ(count_cls(mt, sim::InstrClass::kCall), 1u);
}

TEST(Lowering, UnbalancedTraceTolerated) {
  Fixture f;
  StackConfig cfg = StackConfig::Std();
  CodeImage img = f.image(cfg);
  PathTrace t;
  Recorder rec;
  rec.enable(&t);
  rec.ret();  // stray return
  rec.block(f.caller, 0);  // block without a call
  Lowering low(f.reg, img, cfg, no_implicit());
  EXPECT_NO_THROW(low.lower(t));
}

TEST(Lowering, RecorderDisabledRecordsNothing) {
  Recorder rec;
  PathTrace t;
  rec.call(0);
  rec.block(0, 0);
  EXPECT_TRUE(t.empty());
  rec.enable(&t);
  rec.call(0);
  rec.disable();
  rec.call(1);
  EXPECT_EQ(t.events.size(), 1u);
}

TEST(Lowering, ImplicitTrafficControlledByParams) {
  Fixture f;
  StackConfig cfg = StackConfig::Std();
  CodeImage img = f.image(cfg);
  LowerParams dense;
  dense.implicit_load_every = 2;
  dense.implicit_store_every = 4;
  auto with = Lowering(f.reg, img, cfg, dense).lower(f.simple_call_trace());
  auto without =
      Lowering(f.reg, img, cfg, no_implicit()).lower(f.simple_call_trace());
  EXPECT_EQ(with.size(), without.size());  // same instruction count
  EXPECT_GT(count_cls(with, sim::InstrClass::kLoad),
            count_cls(without, sim::InstrClass::kLoad));
}

}  // namespace
}  // namespace l96::code
