// Tests for the multi-connection fleet engine (harness/fleet.h):
// determinism across runs / worker counts / seeds, the stale-hit
// slow-path fallback, the Zipf schedule, burst scheduling with the
// position-indexed cost table, MachineParams keying, and the packet-
// conservation counters.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "harness/fleet.h"
#include "harness/sweep.h"

namespace l96 {
namespace {

using harness::BurstCostTable;
using harness::FleetCosts;
using harness::FleetRunner;
using harness::FleetSpec;
using harness::ZipfSampler;

// Fleet pricing needs one trace capture + a handful of machine replays;
// share the tables across the tests in this file.
const BurstCostTable& tcp_table() {
  static const BurstCostTable table = harness::measure_burst_costs(
      net::StackKind::kTcpIp, code::StackConfig::All(), 3);
  return table;
}

const BurstCostTable& tcp_table_one() {
  static const BurstCostTable table = harness::measure_burst_costs(
      net::StackKind::kTcpIp, code::StackConfig::All(), 1);
  return table;
}

FleetSpec small_spec() {
  FleetSpec spec;
  spec.label = "test";
  spec.kind = net::StackKind::kTcpIp;
  spec.config = code::StackConfig::All();
  spec.connections = 4;
  spec.packets = 32;
  spec.zipf_s = 1.1;
  spec.seed = 5;
  spec.scheme = code::FlowCacheScheme::kLru;
  spec.cache_capacity = 8;
  spec.churn_every = 10;
  return spec;
}

TEST(ZipfSamplerTest, DeterministicAndSkewed) {
  ZipfSampler a(16, 1.2, 7), b(16, 1.2, 7), c(16, 1.2, 8);
  std::vector<std::size_t> sa, sb, sc;
  for (int i = 0; i < 200; ++i) {
    sa.push_back(a.next());
    sb.push_back(b.next());
    sc.push_back(c.next());
  }
  EXPECT_EQ(sa, sb);  // same seed, same stream
  EXPECT_NE(sa, sc);  // different seed diverges

  // Skew: flow 0 dominates under s=1.2; under s=0 the draw is uniform.
  std::size_t hot_skewed = 0, hot_uniform = 0;
  ZipfSampler skewed(16, 1.2, 3), uniform(16, 0.0, 3);
  for (int i = 0; i < 2000; ++i) {
    hot_skewed += skewed.next() == 0;
    hot_uniform += uniform.next() == 0;
  }
  EXPECT_GT(hot_skewed, 400u);   // ~29% analytically
  EXPECT_LT(hot_uniform, 200u);  // ~6.25% analytically
  EXPECT_THROW(ZipfSampler(0, 1.0, 1), std::invalid_argument);
}

TEST(ZipfSamplerTest, SingleFlowAlwaysDrawsZero) {
  ZipfSampler one(1, 1.2, 42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(one.next(), 0u);
}

TEST(ZipfSamplerTest, UniformDrawPassesChiSquared) {
  // s = 0 must be uniform over the flows, not merely "less skewed": 16
  // bins x 4000 draws, chi-squared with 15 degrees of freedom.  The 0.001
  // critical value is 37.7; the sampler is deterministic, so this is a
  // regression bound, not a flaky statistical test.
  constexpr std::size_t kBins = 16;
  constexpr int kDraws = 4000;
  ZipfSampler uniform(kBins, 0.0, 12345);
  std::vector<int> counts(kBins, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[uniform.next()];
  const double expected = static_cast<double>(kDraws) / kBins;
  double chi2 = 0;
  for (int c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 37.7) << "uniform draw is measurably non-uniform";
}

TEST(ZipfSamplerTest, LargeNTailIsReachable) {
  // The inverse-CDF lookup must keep tail precision at large n: the final
  // CDF entry is pinned to exactly 1.0, draws stay in range, and under a
  // uniform draw the top 1/16 of a 65536-flow population is hit often.
  constexpr std::size_t kN = 65536;
  ZipfSampler big(kN, 0.0, 99);
  std::size_t top_tail = 0;
  for (int i = 0; i < 4000; ++i) {
    const std::size_t k = big.next();
    ASSERT_LT(k, kN);
    top_tail += k >= kN - kN / 16;
  }
  EXPECT_GT(top_tail, 100u);  // expected ~250 of 4000

  // Skewed large-n draw also stays in range (the un-normalized CDF spans
  // many orders of magnitude; rounding must not push lookups past n-1).
  ZipfSampler skew(kN, 1.4, 7);
  for (int i = 0; i < 4000; ++i) ASSERT_LT(skew.next(), kN);
}

TEST(FleetCostsTest, SlowPathPricedAboveInlinedFastPath) {
  const BurstCostTable& t = tcp_table();
  ASSERT_EQ(t.positions(), 3u);
  EXPECT_GT(t.fast_us.front(), 0.0);
  EXPECT_GT(t.slow_us.front(), t.fast_us.front())
      << "standalone slow-path replay must cost more than the inlined "
         "composite";
  EXPECT_GT(t.controller_us, 0.0);
}

TEST(FleetCostsTest, DeprecatedFlatCostsMatchPositionZero) {
  // The flat FleetCosts view is the 1-position table: both must price
  // first-in-burst packets identically (the pre-burst engine's numbers).
  const FleetCosts flat = harness::measure_fleet_costs(
      net::StackKind::kTcpIp, code::StackConfig::All());
  EXPECT_DOUBLE_EQ(flat.controller_us, tcp_table_one().controller_us);
  EXPECT_DOUBLE_EQ(flat.fast_us, tcp_table_one().fast_us.front());
  EXPECT_DOUBLE_EQ(flat.slow_us, tcp_table_one().slow_us.front());
  // Position 0 does not depend on how many positions were measured.
  EXPECT_DOUBLE_EQ(flat.fast_us, tcp_table().fast_us.front());
  EXPECT_DOUBLE_EQ(flat.slow_us, tcp_table().slow_us.front());
}

TEST(FleetCostsTest, TableClampsPastMeasuredPositions) {
  const BurstCostTable& t = tcp_table();
  EXPECT_DOUBLE_EQ(t.fast_at(t.positions() + 5), t.fast_us.back());
  EXPECT_DOUBLE_EQ(t.slow_at(t.positions() + 5), t.slow_us.back());
  EXPECT_DOUBLE_EQ(t.fast_at(0), t.fast_us.front());
}

TEST(FleetCostsTest, BurstPositionsAmortize) {
  const BurstCostTable& t = tcp_table();
  for (std::size_t p = 1; p < t.positions(); ++p) {
    EXPECT_LE(t.fast_us[p], t.fast_us[p - 1]) << "position " << p;
  }
  EXPECT_LT(t.fast_us.back(), t.fast_us.front())
      << "back-to-back replays must amortize the scrubbed warm-up";
}

TEST(FleetTest, DeterministicAcrossRunsAndWorkerCounts) {
  std::vector<FleetSpec> specs;
  for (auto scheme : {code::FlowCacheScheme::kOneBehind,
                      code::FlowCacheScheme::kLru}) {
    for (double s : {0.0, 1.2}) {
      FleetSpec spec = small_spec();
      spec.scheme = scheme;
      spec.zipf_s = s;
      specs.push_back(spec);
    }
  }
  FleetRunner serial(1), parallel(3);
  const auto r1 = serial.run(specs, tcp_table());
  const auto r3 = parallel.run(specs, tcp_table());
  ASSERT_EQ(r1.size(), specs.size());
  ASSERT_EQ(r3.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(r1[i].sample_digest, r3[i].sample_digest) << specs[i].label;
    EXPECT_EQ(r1[i].packets_sampled, r3[i].packets_sampled);
    EXPECT_EQ(r1[i].cache.hits, r3[i].cache.hits);
    EXPECT_EQ(r1[i].cache.stale_hits, r3[i].cache.stale_hits);
    EXPECT_DOUBLE_EQ(r1[i].latency.p999, r3[i].latency.p999);
    EXPECT_DOUBLE_EQ(r1[i].sim_us, r3[i].sim_us);
  }

  // Same spec, different schedule seed: the sample stream diverges.  Use
  // the one-behind scheme — its hit pattern tracks the flow order, so a
  // different schedule is visible in the samples.  (Under LRU with every
  // flow resident, all schedules price identically — which is correct.)
  FleetSpec reseeded = small_spec();
  reseeded.scheme = code::FlowCacheScheme::kOneBehind;
  reseeded.zipf_s = 1.2;
  reseeded.seed = 6;
  EXPECT_NE(harness::run_fleet(reseeded, tcp_table()).sample_digest,
            r1[1].sample_digest);
}

TEST(FleetTest, BatchOneIsByteIdenticalUnderAnyTableDepth) {
  // Batch 1 means every packet is first-in-burst: only position 0 of the
  // table is ever read, so a 3-position table and the flat 1-position
  // table must produce byte-identical sample streams — the pre-refactor
  // engine's numbers survive the burst refactor exactly.
  const FleetSpec spec = small_spec();  // batch defaults to 1, with churn
  const auto deep = harness::run_fleet(spec, tcp_table());
  const auto flat = harness::run_fleet(spec, tcp_table_one());
  EXPECT_EQ(deep.sample_digest, flat.sample_digest);
  EXPECT_EQ(deep.packets_sampled, flat.packets_sampled);
  EXPECT_EQ(deep.slow_packets, flat.slow_packets);
  EXPECT_DOUBLE_EQ(deep.latency.mean, flat.latency.mean);
}

TEST(FleetTest, BurstSchedulingAmortizesLatency) {
  FleetSpec one = small_spec();
  one.churn_every = 0;
  one.packets = 64;
  FleetSpec burst = one;
  burst.batch = 16;

  const auto r1 = harness::run_fleet(one, tcp_table());
  const auto r16 = harness::run_fleet(burst, tcp_table());

  // Same packet count — the burst positions amortize the processing cost,
  // so the mean must drop strictly.
  EXPECT_EQ(r16.packets_sampled, r1.packets_sampled);
  EXPECT_LT(r16.latency.mean, r1.latency.mean);
  // First-in-burst packets still pay at least the amortized floor plus the
  // full first-packet processing cost.
  EXPECT_GE(r16.latency.max, tcp_table().controller_us +
                                 tcp_table().fast_us.front());
  EXPECT_EQ(r1.bursts, r1.spec.packets);
  EXPECT_EQ(r16.bursts, r16.spec.packets / 16);
}

TEST(FleetTest, ConservationCountersAddUp) {
  for (std::size_t batch : {std::size_t{1}, std::size_t{8}}) {
    FleetSpec spec = small_spec();  // churn_every = 10 over 32 packets
    spec.batch = batch;
    const auto r = harness::run_fleet(spec, tcp_table());
    EXPECT_EQ(r.spec.packets, r.scheduled_sampled + r.dropped_in_churn)
        << "batch " << batch;
    EXPECT_EQ(r.packets_sampled, r.scheduled_sampled + r.handshake_sampled)
        << "batch " << batch;
    EXPECT_GT(r.churns, 0u);
    EXPECT_GT(r.handshake_sampled, 0u)
        << "churn handshakes must be counted separately, not folded into "
           "the scheduled packets";
  }
}

TEST(FleetTest, RejectsMismatchedMachineParams) {
  // Regression: a grid row sweeping MachineParams must not silently reuse
  // a cost table measured under the defaults.
  FleetSpec spec = small_spec();
  spec.params.mem.dcache_bytes *= 2;
  EXPECT_THROW(harness::run_fleet(spec, tcp_table()), std::invalid_argument);
  try {
    harness::run_fleet(spec, tcp_table());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("MachineParams"), std::string::npos)
        << "error must name the mismatch: " << e.what();
  }

  // The runner rejects the bad row too (first error wins).
  FleetRunner runner(2);
  EXPECT_THROW(runner.run({small_spec(), spec}, tcp_table()),
               std::invalid_argument);

  // A mismatched stack config is equally rejected.
  FleetSpec other_cfg = small_spec();
  other_cfg.config = code::StackConfig::Pin();
  EXPECT_THROW(harness::run_fleet(other_cfg, tcp_table()),
               std::invalid_argument);
}

TEST(FleetTest, ParamsKeyCoversEveryField) {
  const harness::MachineParams base;
  EXPECT_EQ(harness::machine_params_key(base),
            harness::machine_params_key(harness::MachineParams::defaults()));
  harness::MachineParams m1 = base;
  m1.mem.icache_bytes *= 2;
  harness::MachineParams m2 = base;
  m2.scrub_fraction_d += 0.1;
  harness::MachineParams m3 = base;
  m3.cpu.dual_issue = !m3.cpu.dual_issue;
  harness::MachineParams m4 = base;
  m4.classifier_overhead_us = 2.0;
  const std::uint64_t k = harness::machine_params_key(base);
  EXPECT_NE(harness::machine_params_key(m1), k);
  EXPECT_NE(harness::machine_params_key(m2), k);
  EXPECT_NE(harness::machine_params_key(m3), k);
  EXPECT_NE(harness::machine_params_key(m4), k);
}

TEST(FleetTest, ChurnProducesStaleHitsThatFallBackSlow) {
  const BurstCostTable& costs = tcp_table();
  const FleetSpec spec = small_spec();  // churn_every = 10 over 32 packets
  const auto r = harness::run_fleet(spec, costs);

  EXPECT_GE(r.churns, 2u);
  EXPECT_GE(r.cache.stale_hits, r.churns)
      << "each reopened flow's first frame must hit the stale entry";
  EXPECT_GE(r.slow_packets, r.cache.stale_hits)
      << "every stale hit must route through the standalone slow path";
  // The tail carries the slow-path price: controller + lookup + slow_us.
  EXPECT_GT(r.latency.max, costs.controller_us + costs.slow_us.front());
  // The floor is the fast path: controller + cheapest lookup + fast_us.
  EXPECT_GE(r.latency.p50, costs.controller_us + costs.fast_us.front());
  EXPECT_GT(r.packets_sampled, spec.packets);  // churn handshakes included

  // Without churn, no connection ever unbinds: zero stale traffic.
  FleetSpec quiet = small_spec();
  quiet.churn_every = 0;
  const auto q = harness::run_fleet(quiet, costs);
  EXPECT_EQ(q.cache.stale_hits, 0u);
  EXPECT_EQ(q.slow_packets, 0u);
  EXPECT_EQ(q.churns, 0u);
  EXPECT_EQ(q.packets_sampled, quiet.packets);
  EXPECT_EQ(q.dropped_in_churn, 0u);
  EXPECT_EQ(q.handshake_sampled, 0u);
}

TEST(FleetTest, RpcFleetRunsAndCaches) {
  const BurstCostTable costs = harness::measure_burst_costs(
      net::StackKind::kRpc, code::StackConfig::All(), 2);
  FleetSpec spec;
  spec.label = "rpc-test";
  spec.kind = net::StackKind::kRpc;
  spec.config = code::StackConfig::All();
  spec.connections = 4;
  spec.packets = 24;
  spec.batch = 4;
  spec.zipf_s = 1.0;
  spec.seed = 9;
  spec.scheme = code::FlowCacheScheme::kLru;
  spec.cache_capacity = 4;
  const auto r = harness::run_fleet(spec, costs);
  EXPECT_EQ(r.packets_sampled, spec.packets);
  EXPECT_EQ(r.scheduled_sampled, spec.packets);
  EXPECT_EQ(r.bursts, spec.packets / spec.batch);
  EXPECT_GT(r.cache.hit_ratio(), 0.0);
  EXPECT_EQ(r.cache.stale_hits, 0u);
  EXPECT_GT(r.latency.mean, costs.controller_us);
}

TEST(FleetTest, RejectsNonInlinedConfigAndEmptySchedules) {
  FleetSpec spec = small_spec();
  spec.config = code::StackConfig::Std();  // no path_inlining
  EXPECT_THROW(harness::run_fleet(spec, tcp_table()), std::invalid_argument);
  spec = small_spec();
  spec.packets = 0;
  EXPECT_THROW(harness::run_fleet(spec, tcp_table()), std::invalid_argument);
  spec = small_spec();
  spec.connections = 0;
  EXPECT_THROW(harness::run_fleet(spec, tcp_table()), std::invalid_argument);
}

TEST(FleetTest, ScaledRuleSetRowRunsAndStaysDeterministic) {
  // A fleet row with a production-scale rule table: the server swaps its
  // classifier for the generated one (decoys never match fleet traffic,
  // so the functional results — hits, conservation — are those of the
  // default classifier), and the digest is worker-count independent.
  FleetSpec spec = small_spec();
  spec.rules = 128;
  spec.rule_seed = 3;
  spec.cache_costs = code::FlowCacheCosts{.hit_us = 0.1,
                                          .probe_us = 0.4,
                                          .per_rule_us = 0.02,
                                          .measured = true};
  FleetRunner serial(1), parallel(2);
  const auto r1 = serial.run({spec}, tcp_table());
  const auto r2 = parallel.run({spec}, tcp_table());
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(r1[0].sample_digest, r2[0].sample_digest);
  EXPECT_GT(r1[0].cache.hits, 0u);
  // Every fleet frame matches the real fast path and carries a full key:
  // no scan may end unmatched at any rule-table scale.
  EXPECT_EQ(r1[0].cache.unmatched_scans, 0u);
  EXPECT_EQ(r1[0].spec.rules, 128u);

  // The 129-path set activates the tuple engine, and fleet traffic never
  // lands in a decoy bucket — so every miss scan verifies exactly the
  // real path's rules, the same count the default one-path classifier
  // examines.  Scan work stays flat as the rule table grows; a linear
  // scan would have waded through all 128 decoys per miss.
  FleetSpec plain = spec;
  plain.rules = 0;
  const auto p = serial.run({plain}, tcp_table());
  EXPECT_EQ(r1[0].cache.rules_examined, p[0].cache.rules_examined);
  EXPECT_EQ(r1[0].cache.misses, p[0].cache.misses);
  EXPECT_EQ(r1[0].cache.hits, p[0].cache.hits)
      << "decoys must never match fleet traffic";
}

TEST(FleetTest, RejectsFlatClassifierOverheadKnob) {
  // Exactly one classification cost model: fleet rows price lookups via
  // FlowCacheCosts, so the flat analytic knob must be rejected up front.
  FleetSpec spec = small_spec();
  spec.params.classifier_overhead_us = 1.0;
  try {
    harness::run_fleet(spec, tcp_table());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("classifier_overhead_us"),
              std::string::npos)
        << e.what();
  }
}

TEST(FleetTest, FleetJsonSectionIsSchemaVersioned) {
  const auto r = harness::run_fleet(small_spec(), tcp_table());
  const harness::Json section = harness::fleet_json(tcp_table(), {r});
  ASSERT_TRUE(section.is_object());
  const auto* schema = section.find("schema");
  ASSERT_NE(schema, nullptr);
  ASSERT_NE(schema->as_string(), nullptr);
  EXPECT_EQ(*schema->as_string(), "l96.fleet.v2");
  const auto* costs = section.find("costs");
  ASSERT_NE(costs, nullptr);
  const auto* fast = costs->find("fast_us");
  ASSERT_NE(fast, nullptr);
  EXPECT_EQ(fast->size(), tcp_table().positions());
  const auto* rows = section.find("rows");
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->size(), 1u);
  // Attachable to a sweep row (validates the section contract).
  harness::SweepOutcome outcome;
  EXPECT_NO_THROW(outcome.extra_json("fleet", section));
}

}  // namespace
}  // namespace l96
