// Tests for the multi-connection fleet engine (harness/fleet.h):
// determinism across runs / worker counts / seeds, the stale-hit
// slow-path fallback, and the Zipf schedule.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "harness/fleet.h"
#include "harness/sweep.h"

namespace l96 {
namespace {

using harness::FleetCosts;
using harness::FleetRunner;
using harness::FleetSpec;
using harness::ZipfSampler;

// Fleet pricing needs one trace capture + three machine replays; share it
// across the tests in this file.
const FleetCosts& tcp_costs() {
  static const FleetCosts costs = harness::measure_fleet_costs(
      net::StackKind::kTcpIp, code::StackConfig::All());
  return costs;
}

FleetSpec small_spec() {
  FleetSpec spec;
  spec.label = "test";
  spec.kind = net::StackKind::kTcpIp;
  spec.config = code::StackConfig::All();
  spec.connections = 4;
  spec.packets = 32;
  spec.zipf_s = 1.1;
  spec.seed = 5;
  spec.scheme = code::FlowCacheScheme::kLru;
  spec.cache_capacity = 8;
  spec.churn_every = 10;
  return spec;
}

TEST(ZipfSamplerTest, DeterministicAndSkewed) {
  ZipfSampler a(16, 1.2, 7), b(16, 1.2, 7), c(16, 1.2, 8);
  std::vector<std::size_t> sa, sb, sc;
  for (int i = 0; i < 200; ++i) {
    sa.push_back(a.next());
    sb.push_back(b.next());
    sc.push_back(c.next());
  }
  EXPECT_EQ(sa, sb);  // same seed, same stream
  EXPECT_NE(sa, sc);  // different seed diverges

  // Skew: flow 0 dominates under s=1.2; under s=0 the draw is uniform.
  std::size_t hot_skewed = 0, hot_uniform = 0;
  ZipfSampler skewed(16, 1.2, 3), uniform(16, 0.0, 3);
  for (int i = 0; i < 2000; ++i) {
    hot_skewed += skewed.next() == 0;
    hot_uniform += uniform.next() == 0;
  }
  EXPECT_GT(hot_skewed, 400u);   // ~29% analytically
  EXPECT_LT(hot_uniform, 200u);  // ~6.25% analytically
  EXPECT_THROW(ZipfSampler(0, 1.0, 1), std::invalid_argument);
}

TEST(FleetCostsTest, SlowPathPricedAboveInlinedFastPath) {
  const FleetCosts& c = tcp_costs();
  EXPECT_GT(c.fast_us, 0.0);
  EXPECT_GT(c.slow_us, c.fast_us)
      << "standalone slow-path replay must cost more than the inlined "
         "composite";
  EXPECT_GT(c.controller_us, 0.0);
}

TEST(FleetTest, DeterministicAcrossRunsAndWorkerCounts) {
  std::vector<FleetSpec> specs;
  for (auto scheme : {code::FlowCacheScheme::kOneBehind,
                      code::FlowCacheScheme::kLru}) {
    for (double s : {0.0, 1.2}) {
      FleetSpec spec = small_spec();
      spec.scheme = scheme;
      spec.zipf_s = s;
      specs.push_back(spec);
    }
  }
  FleetRunner serial(1), parallel(3);
  const auto r1 = serial.run(specs, tcp_costs());
  const auto r3 = parallel.run(specs, tcp_costs());
  ASSERT_EQ(r1.size(), specs.size());
  ASSERT_EQ(r3.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(r1[i].sample_digest, r3[i].sample_digest) << specs[i].label;
    EXPECT_EQ(r1[i].packets_sampled, r3[i].packets_sampled);
    EXPECT_EQ(r1[i].cache.hits, r3[i].cache.hits);
    EXPECT_EQ(r1[i].cache.stale_hits, r3[i].cache.stale_hits);
    EXPECT_DOUBLE_EQ(r1[i].latency.p999, r3[i].latency.p999);
    EXPECT_DOUBLE_EQ(r1[i].sim_us, r3[i].sim_us);
  }

  // Same spec, different schedule seed: the sample stream diverges.  Use
  // the one-behind scheme — its hit pattern tracks the flow order, so a
  // different schedule is visible in the samples.  (Under LRU with every
  // flow resident, all schedules price identically — which is correct.)
  FleetSpec reseeded = small_spec();
  reseeded.scheme = code::FlowCacheScheme::kOneBehind;
  reseeded.zipf_s = 1.2;
  reseeded.seed = 6;
  EXPECT_NE(harness::run_fleet(reseeded, tcp_costs()).sample_digest,
            r1[1].sample_digest);
}

TEST(FleetTest, ChurnProducesStaleHitsThatFallBackSlow) {
  const FleetCosts& costs = tcp_costs();
  const FleetSpec spec = small_spec();  // churn_every = 10 over 32 packets
  const auto r = harness::run_fleet(spec, costs);

  EXPECT_GE(r.churns, 2u);
  EXPECT_GE(r.cache.stale_hits, r.churns)
      << "each reopened flow's first frame must hit the stale entry";
  EXPECT_GE(r.slow_packets, r.cache.stale_hits)
      << "every stale hit must route through the standalone slow path";
  // The tail carries the slow-path price: controller + lookup + slow_us.
  EXPECT_GT(r.latency.max, costs.controller_us + costs.slow_us);
  // The floor is the fast path: controller + cheapest lookup + fast_us.
  EXPECT_GE(r.latency.p50, costs.controller_us + costs.fast_us);
  EXPECT_GT(r.packets_sampled, spec.packets);  // churn handshakes included

  // Without churn, no connection ever unbinds: zero stale traffic.
  FleetSpec quiet = small_spec();
  quiet.churn_every = 0;
  const auto q = harness::run_fleet(quiet, costs);
  EXPECT_EQ(q.cache.stale_hits, 0u);
  EXPECT_EQ(q.slow_packets, 0u);
  EXPECT_EQ(q.churns, 0u);
  EXPECT_EQ(q.packets_sampled, quiet.packets);
}

TEST(FleetTest, RpcFleetRunsAndCaches) {
  const FleetCosts costs = harness::measure_fleet_costs(
      net::StackKind::kRpc, code::StackConfig::All());
  FleetSpec spec;
  spec.label = "rpc-test";
  spec.kind = net::StackKind::kRpc;
  spec.config = code::StackConfig::All();
  spec.connections = 4;
  spec.packets = 24;
  spec.zipf_s = 1.0;
  spec.seed = 9;
  spec.scheme = code::FlowCacheScheme::kLru;
  spec.cache_capacity = 4;
  const auto r = harness::run_fleet(spec, costs);
  EXPECT_EQ(r.packets_sampled, spec.packets);
  EXPECT_GT(r.cache.hit_ratio(), 0.0);
  EXPECT_EQ(r.cache.stale_hits, 0u);
  EXPECT_GT(r.latency.mean, costs.controller_us);
}

TEST(FleetTest, RejectsNonInlinedConfigAndEmptySchedules) {
  FleetSpec spec = small_spec();
  spec.config = code::StackConfig::Std();  // no path_inlining
  EXPECT_THROW(harness::run_fleet(spec, tcp_costs()), std::invalid_argument);
  spec = small_spec();
  spec.packets = 0;
  EXPECT_THROW(harness::run_fleet(spec, tcp_costs()), std::invalid_argument);
  spec = small_spec();
  spec.connections = 0;
  EXPECT_THROW(harness::run_fleet(spec, tcp_costs()), std::invalid_argument);
}

TEST(FleetTest, FleetJsonSectionIsSchemaVersioned) {
  const auto r = harness::run_fleet(small_spec(), tcp_costs());
  const harness::Json section = harness::fleet_json(tcp_costs(), {r});
  ASSERT_TRUE(section.is_object());
  const auto* schema = section.find("schema");
  ASSERT_NE(schema, nullptr);
  ASSERT_NE(schema->as_string(), nullptr);
  EXPECT_EQ(*schema->as_string(), "l96.fleet.v1");
  const auto* rows = section.find("rows");
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->size(), 1u);
  // Attachable to a sweep row (validates the section contract).
  harness::SweepOutcome outcome;
  EXPECT_NO_THROW(outcome.extra_json("fleet", section));
}

}  // namespace
}  // namespace l96
