// Tests for the unified runner API (harness/runner.h): the run() overloads
// against the legacy runner classes (byte-identical wrapper equivalence),
// the shared worker pool, and the out_path plumbing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "harness/runner.h"

namespace l96 {
namespace {

using harness::BurstCostTable;
using harness::FleetRunSpec;
using harness::FleetSpec;
using harness::Outcome;
using harness::RecoveryRunSpec;
using harness::RecoverySpec;
using harness::SoakRunSpec;
using harness::SoakSpec;
using harness::StreamRunSpec;

const BurstCostTable& tcp_table() {
  static const BurstCostTable table = harness::measure_burst_costs(
      net::StackKind::kTcpIp, code::StackConfig::All(), 2);
  return table;
}

FleetSpec fleet_spec(std::uint64_t seed) {
  FleetSpec spec;
  spec.label = "runner-test";
  spec.kind = net::StackKind::kTcpIp;
  spec.config = code::StackConfig::All();
  spec.connections = 6;
  spec.packets = 48;
  spec.batch = 2;
  spec.zipf_s = 1.1;
  spec.seed = seed;
  spec.scheme = code::FlowCacheScheme::kLru;
  spec.cache_capacity = 8;
  spec.churn_every = 16;
  return spec;
}

TEST(RunIndexedJobsTest, RunsEveryJobAndReportsWorkers) {
  std::vector<std::atomic<int>> hits(64);
  const std::size_t used = harness::run_indexed_jobs(
      64, 4, [&](std::size_t i) { hits[i].fetch_add(1); });
  EXPECT_GE(used, 1u);
  EXPECT_LE(used, 4u);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(harness::run_indexed_jobs(0, 4, [](std::size_t) {}), 0u);
}

TEST(RunIndexedJobsTest, RethrowsFirstJobError) {
  EXPECT_THROW(harness::run_indexed_jobs(
                   4, 2,
                   [](std::size_t i) {
                     if (i == 2) throw std::runtime_error("job failed");
                   }),
               std::runtime_error);
}

TEST(ResolveWorkersTest, ZeroPicksHardwareFlooredAtTwo) {
  EXPECT_GE(harness::resolve_workers(0), 2u);
  EXPECT_EQ(harness::resolve_workers(7), 7u);
}

TEST(RunnerTest, FleetWrapperIsByteIdentical) {
  const std::vector<FleetSpec> rows = {fleet_spec(3), fleet_spec(4)};

  harness::FleetRunner legacy(2);
  const auto via_legacy = legacy.run(rows, tcp_table());

  FleetRunSpec rs;
  rs.common.workers = 2;
  rs.rows = rows;
  rs.costs = tcp_table();
  const Outcome o = harness::run(rs);

  ASSERT_EQ(o.fleet.size(), via_legacy.size());
  for (std::size_t i = 0; i < via_legacy.size(); ++i) {
    EXPECT_EQ(o.fleet[i].sample_digest, via_legacy[i].sample_digest);
    EXPECT_EQ(o.fleet[i].packets_sampled, via_legacy[i].packets_sampled);
    EXPECT_DOUBLE_EQ(o.fleet[i].latency.mean, via_legacy[i].latency.mean);
  }
  EXPECT_EQ(o.schema, "l96.fleet.v2");
  EXPECT_TRUE(o.ok);
  // The emitted section is the same object fleet_json produces.
  EXPECT_EQ(o.section.dump(),
            harness::fleet_json(tcp_table(), via_legacy).dump());
}

TEST(RunnerTest, RecoveryWrapperIsByteIdentical) {
  RecoverySpec spec;
  spec.fleet = fleet_spec(5);
  spec.fleet.churn_every = 0;
  const std::vector<RecoverySpec> rows = {spec};

  harness::RecoveryRunner legacy(2);
  const auto via_legacy = legacy.run(rows, tcp_table());

  RecoveryRunSpec rs;
  rs.common.workers = 2;
  rs.rows = rows;
  rs.costs = tcp_table();
  const Outcome o = harness::run(rs);

  ASSERT_EQ(o.recovery.size(), 1u);
  EXPECT_EQ(o.recovery[0].fleet.sample_digest,
            via_legacy[0].fleet.sample_digest);
  // Chaos-free recovery must still match the flat fleet engine.
  EXPECT_EQ(o.recovery[0].fleet.sample_digest,
            harness::run_fleet(spec.fleet, tcp_table()).sample_digest);
  EXPECT_EQ(o.schema, "l96.recovery.v1");
}

TEST(RunnerTest, SoakWrapperIsByteIdentical) {
  SoakSpec spec;
  spec.kind = net::StackKind::kTcpIp;
  spec.roundtrips = 200;
  spec.plan.seed = 7;
  spec.plan.rates[0].drop = 0.005;
  spec.plan.rates[1].drop = 0.005;
  spec.plan.start_after_frames = 4;

  harness::SoakRunner legacy(spec);
  const harness::SoakReport via_legacy = legacy.run();

  SoakRunSpec rs;
  rs.rows = {spec};
  const Outcome o = harness::run(rs);

  ASSERT_EQ(o.soak.size(), 1u);
  EXPECT_EQ(o.soak[0].summary(), via_legacy.summary());
  EXPECT_EQ(o.ok, via_legacy.ok());
  EXPECT_EQ(o.schema, "l96.soak.v1");
  EXPECT_NE(o.section.dump().find("\"schema\":\"l96.soak.v1\""),
            std::string::npos);
}

TEST(RunnerTest, StreamRunMeasuresThroughput) {
  StreamRunSpec rs;
  harness::StreamRowSpec row;
  row.label = "ALL-tcp";
  row.kind = net::StackKind::kTcpIp;
  row.config = code::StackConfig::All();
  row.bytes = 64 * 1024;
  rs.rows = {row};
  const Outcome o = harness::run(rs);
  ASSERT_EQ(o.stream.size(), 1u);
  EXPECT_GT(o.stream[0].kbytes_per_second, 0.0);
  EXPECT_EQ(o.schema, "l96.stream.v1");
}

TEST(RunnerTest, OutPathWritesSection) {
  const std::string path = "bench/out/test_runner_section.json";
  FleetRunSpec rs;
  rs.common.workers = 1;
  rs.common.out_path = path;
  rs.rows = {fleet_spec(11)};
  rs.costs = tcp_table();
  const Outcome o = harness::run(rs);
  EXPECT_EQ(o.out_path, path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), o.section.dump() + "\n");
  std::remove(path.c_str());
}

TEST(RunnerTest, RowDefaultsStampCommonFields) {
  FleetRunSpec rs;
  rs.common.seed = 77;
  rs.common.batch = 9;
  const FleetSpec row = rs.row_defaults();
  EXPECT_EQ(row.seed, 77u);
  EXPECT_EQ(row.batch, 9u);

  harness::ShardRunSpec ss;
  ss.common.seed = 78;
  EXPECT_EQ(ss.row_defaults().fleet.seed, 78u);

  RecoveryRunSpec cs;
  cs.common.seed = 79;
  EXPECT_EQ(cs.row_defaults().fleet.seed, 79u);
}

}  // namespace
}  // namespace l96
