// Fault-injection subsystem: injector determinism, per-direction stream
// independence, scheduled faults, legacy one-shot wrappers, wire frame
// conservation under mixed faults, and the sweep JSON "extra" map.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/sweep.h"
#include "net/fault.h"
#include "net/wire.h"
#include "net/world.h"

namespace l96 {
namespace {

net::FaultPlan noisy_plan(std::uint64_t seed) {
  net::FaultPlan plan;
  plan.seed = seed;
  for (int p = 0; p < 2; ++p) {
    plan.rates[p] = {.drop = 0.05,
                     .corrupt = 0.05,
                     .duplicate = 0.03,
                     .reorder = 0.03,
                     .delay = 0.04};
  }
  return plan;
}

TEST(FaultInjector, SameSeedSameDecisions) {
  net::FaultInjector a, b;
  a.set_plan(noisy_plan(42));
  b.set_plan(noisy_plan(42));
  for (int i = 0; i < 2000; ++i) {
    const int port = i % 2;
    const auto da = a.next(port, 64, static_cast<std::uint64_t>(i) * 100);
    const auto db = b.next(port, 64, static_cast<std::uint64_t>(i) * 100);
    ASSERT_EQ(da.kind, db.kind) << "frame " << i;
    ASSERT_EQ(da.arg, db.arg) << "frame " << i;
  }
  EXPECT_EQ(a.log(), b.log());
  EXPECT_EQ(a.counters().total(), b.counters().total());
  EXPECT_GT(a.counters().total(), 0u);
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  net::FaultInjector a, b;
  a.set_plan(noisy_plan(1));
  b.set_plan(noisy_plan(2));
  int diverged = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto da = a.next(0, 64, 0);
    const auto db = b.next(0, 64, 0);
    if (da.kind != db.kind || da.arg != db.arg) ++diverged;
  }
  EXPECT_GT(diverged, 0);
}

TEST(FaultInjector, DirectionsAreIndependentStreams) {
  // Port 0's decision sequence must not depend on how many port-1
  // transmits interleave: each direction draws from its own stream.
  net::FaultInjector solo, mixed;
  solo.set_plan(noisy_plan(7));
  mixed.set_plan(noisy_plan(7));
  std::vector<net::FaultDecision> solo_seq, mixed_seq;
  for (int i = 0; i < 500; ++i) {
    solo_seq.push_back(solo.next(0, 64, 0));
  }
  for (int i = 0; i < 500; ++i) {
    mixed.next(1, 64, 0);  // interleaved other-direction traffic
    mixed_seq.push_back(mixed.next(0, 64, 0));
    mixed.next(1, 64, 0);
  }
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(solo_seq[i].kind, mixed_seq[i].kind) << "frame " << i;
    ASSERT_EQ(solo_seq[i].arg, mixed_seq[i].arg) << "frame " << i;
  }
}

TEST(FaultInjector, RatesApproximateCounts) {
  net::FaultPlan plan;
  plan.seed = 99;
  plan.rates[0] = {.drop = 0.10, .corrupt = 0.05};
  net::FaultInjector inj;
  inj.set_plan(plan);
  const int n = 20000;
  for (int i = 0; i < n; ++i) inj.next(0, 64, 0);
  // Loose 30% bands around the expectation (binomial stddev is ~1-2%).
  EXPECT_GT(inj.counters().drops, n * 0.10 * 0.7);
  EXPECT_LT(inj.counters().drops, n * 0.10 * 1.3);
  EXPECT_GT(inj.counters().corrupts, n * 0.05 * 0.7);
  EXPECT_LT(inj.counters().corrupts, n * 0.05 * 1.3);
  EXPECT_EQ(inj.counters().duplicates, 0u);
}

TEST(FaultInjector, StartAfterFramesDefersRandomFaults) {
  net::FaultPlan plan;
  plan.seed = 5;
  plan.rates[0].drop = 1.0;
  plan.start_after_frames = 10;
  net::FaultInjector inj;
  inj.set_plan(plan);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(inj.next(0, 64, 0).kind, net::FaultKind::kNone) << i;
  }
  EXPECT_EQ(inj.next(0, 64, 0).kind, net::FaultKind::kDrop);
}

TEST(FaultInjector, ScheduledFaultFiresAtExactFrame) {
  net::FaultPlan plan;
  plan.seed = 3;
  plan.scheduled[1].push_back(
      {.frame_ix = 5, .kind = net::FaultKind::kCorrupt, .arg = 17,
       .has_arg = true});
  net::FaultInjector inj;
  inj.set_plan(plan);
  for (int i = 0; i < 12; ++i) {
    const auto d = inj.next(1, 64, 1000 + static_cast<std::uint64_t>(i));
    if (i == 5) {
      EXPECT_EQ(d.kind, net::FaultKind::kCorrupt);
      EXPECT_EQ(d.arg, 17u);
    } else {
      EXPECT_EQ(d.kind, net::FaultKind::kNone) << "frame " << i;
    }
  }
  ASSERT_EQ(inj.log().size(), 1u);
  EXPECT_EQ(inj.log()[0].frame_ix, 5u);
  EXPECT_EQ(inj.log()[0].port, 1);
  EXPECT_EQ(inj.log()[0].at_us, 1005u);
}

TEST(FaultInjector, RejectsOversubscribedRates) {
  net::FaultPlan plan;
  plan.rates[0] = {.drop = 0.6, .corrupt = 0.6};
  net::FaultInjector inj;
  EXPECT_THROW(inj.set_plan(plan), std::invalid_argument);
}

TEST(FaultInjector, LegacyOneShotWrappers) {
  net::FaultInjector inj;
  inj.force_drop(1);
  inj.force_corrupt(1);
  EXPECT_EQ(inj.next(0, 64, 0).kind, net::FaultKind::kDrop);
  const auto d = inj.next(1, 64, 0);
  EXPECT_EQ(d.kind, net::FaultKind::kCorrupt);
  EXPECT_EQ(d.arg, 32u);  // middle byte, as the legacy API corrupted
  EXPECT_EQ(inj.next(0, 64, 0).kind, net::FaultKind::kNone);
  EXPECT_EQ(inj.counters().forced, 2u);
}

// --- Wire-level behaviour ---------------------------------------------------

struct WirePair {
  xk::EventManager events;
  net::Wire wire{events};
  std::vector<std::vector<std::uint8_t>> rx[2];
  WirePair() {
    wire.connect(0, [this](std::vector<std::uint8_t> f) {
      rx[0].push_back(std::move(f));
    });
    wire.connect(1, [this](std::vector<std::uint8_t> f) {
      rx[1].push_back(std::move(f));
    });
  }
};

TEST(Wire, DeliversIntactWithoutPlan) {
  WirePair w;
  w.wire.transmit(0, std::vector<std::uint8_t>(64, 0xAB));
  w.events.advance_by(1'000'000);
  ASSERT_EQ(w.rx[1].size(), 1u);
  EXPECT_EQ(w.rx[1][0], std::vector<std::uint8_t>(64, 0xAB));
  EXPECT_TRUE(w.wire.conserved());
  EXPECT_EQ(w.wire.frames_in_flight(), 0u);
}

TEST(Wire, CorruptFlipsExactlyOneByte) {
  WirePair w;
  w.wire.injector().force(0, net::FaultKind::kCorrupt, 10, true);
  w.wire.transmit(0, std::vector<std::uint8_t>(64, 0x00));
  w.events.advance_by(1'000'000);
  ASSERT_EQ(w.rx[1].size(), 1u);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(w.rx[1][0][i], i == 10 ? 0xFF : 0x00) << "byte " << i;
  }
}

TEST(Wire, DuplicateDeliversTwice) {
  WirePair w;
  w.wire.injector().force(1, net::FaultKind::kDuplicate);
  w.wire.transmit(1, std::vector<std::uint8_t>(64, 0x11));
  w.events.advance_by(1'000'000);
  ASSERT_EQ(w.rx[0].size(), 2u);
  EXPECT_EQ(w.rx[0][0], w.rx[0][1]);
  EXPECT_TRUE(w.wire.conserved());
  EXPECT_EQ(w.wire.frames_delivered(), 2u);
  EXPECT_EQ(w.wire.frames_carried(), 1u);
}

TEST(Wire, ReorderSwapsWithSuccessor) {
  WirePair w;
  w.wire.injector().force(0, net::FaultKind::kReorder);
  w.wire.transmit(0, std::vector<std::uint8_t>(64, 0x01));  // held
  w.wire.transmit(0, std::vector<std::uint8_t>(64, 0x02));  // releases it
  w.events.advance_by(2'000'000);
  ASSERT_EQ(w.rx[1].size(), 2u);
  EXPECT_EQ(w.rx[1][0][0], 0x02);
  EXPECT_EQ(w.rx[1][1][0], 0x01);
  EXPECT_TRUE(w.wire.conserved());
  EXPECT_EQ(w.wire.frames_in_flight(), 0u);
}

TEST(Wire, ReorderFallbackFlushesHeldFrame) {
  // No successor ever transmits: the hold falls back to a timer flush so
  // the frame is not lost (conservation would catch it otherwise).
  WirePair w;
  w.wire.injector().force(0, net::FaultKind::kReorder);
  w.wire.transmit(0, std::vector<std::uint8_t>(64, 0x77));
  EXPECT_EQ(w.wire.frames_in_flight(), 1u);
  w.events.advance_by(2'000'000);
  ASSERT_EQ(w.rx[1].size(), 1u);
  EXPECT_EQ(w.rx[1][0][0], 0x77);
  EXPECT_TRUE(w.wire.conserved());
  EXPECT_EQ(w.wire.frames_in_flight(), 0u);
  EXPECT_EQ(w.events.pending(), 0u);
}

TEST(Wire, DelayAddsLatencyWithoutLoss) {
  WirePair a, b;
  a.wire.transmit(0, std::vector<std::uint8_t>(64, 1));
  b.wire.injector().force(0, net::FaultKind::kDelay, 1500, true);
  b.wire.transmit(0, std::vector<std::uint8_t>(64, 1));
  // The delayed copy is still pending when the clean one has arrived.
  a.events.advance_by(200);
  b.events.advance_by(200);
  EXPECT_EQ(a.rx[1].size(), 1u);
  EXPECT_EQ(b.rx[1].size(), 0u);
  b.events.advance_by(2'000);
  EXPECT_EQ(b.rx[1].size(), 1u);
  EXPECT_TRUE(b.wire.conserved());
}

TEST(Wire, ConservationUnderMixedRandomFaults) {
  WirePair w;
  w.wire.set_fault_plan(noisy_plan(1234));
  for (int i = 0; i < 2000; ++i) {
    w.wire.transmit(i % 2, std::vector<std::uint8_t>(64, 0x5A));
    if (i % 7 == 0) w.events.advance_by(500);
  }
  w.events.advance_by(10'000'000);
  EXPECT_EQ(w.wire.frames_in_flight(), 0u);
  EXPECT_TRUE(w.wire.conserved());
  EXPECT_EQ(w.wire.frames_carried(), 2000u);
  const auto& c = w.wire.fault_counters();
  EXPECT_GT(c.drops, 0u);
  EXPECT_GT(c.corrupts, 0u);
  EXPECT_GT(c.duplicates, 0u);
  EXPECT_GT(c.reorders, 0u);
  EXPECT_GT(c.delays, 0u);
  EXPECT_EQ(w.wire.frames_carried() + c.duplicates,
            w.wire.frames_delivered() + w.wire.frames_dropped());
  EXPECT_EQ(w.wire.fault_log().size(), c.total());
}

TEST(Wire, ConservationUnderFaultPlanWithBlackout) {
  // Random faults and a hard link blackout compose: every frame must land
  // in exactly one of delivered / injector-dropped / blackout-dropped, and
  // the deterministic fault schedule must not be consumed by frames that
  // never reached the medium.
  WirePair w;
  w.wire.set_fault_plan(noisy_plan(99));

  // Phase 1: noisy traffic with the link up.
  for (int i = 0; i < 600; ++i) {
    w.wire.transmit(i % 2, std::vector<std::uint8_t>(64, 0x21));
    if (i % 5 == 0) w.events.advance_by(300);
  }

  // Cut the link with frames still in the air: reorder holds die at the
  // cut, mid-flight frames die at arrival time.
  w.wire.link_down();
  ASSERT_EQ(w.wire.blackouts(), 1u);
  const auto faults_at_cut = w.wire.fault_counters().total();

  // Phase 2: frames transmitted into the blackout are swallowed before the
  // injector ever sees them.
  for (int i = 0; i < 200; ++i) {
    w.wire.transmit(i % 2, std::vector<std::uint8_t>(64, 0x42));
  }
  EXPECT_EQ(w.wire.fault_counters().total(), faults_at_cut);
  w.events.advance_by(5'000'000);
  EXPECT_EQ(w.wire.frames_in_flight(), 0u);
  EXPECT_GE(w.wire.blackout_drops(), 200u);

  // Phase 3: restore the link; the fault schedule resumes where it paused.
  w.wire.link_up();
  for (int i = 0; i < 600; ++i) {
    w.wire.transmit(i % 2, std::vector<std::uint8_t>(64, 0x63));
    if (i % 5 == 0) w.events.advance_by(300);
  }
  w.events.advance_by(10'000'000);

  EXPECT_EQ(w.wire.frames_in_flight(), 0u);
  EXPECT_TRUE(w.wire.conserved());
  EXPECT_EQ(w.wire.frames_carried(), 1400u);
  const auto& c = w.wire.fault_counters();
  EXPECT_GT(c.total(), faults_at_cut);  // injector active again after restore
  // Exactly-once accounting across both loss mechanisms (each duplicate
  // adds one extra delivery):
  EXPECT_EQ(w.wire.frames_carried() + c.duplicates,
            w.wire.frames_delivered() + w.wire.frames_dropped() +
                w.wire.blackout_drops());
}

TEST(Wire, WorldFaultLogReplaysByteIdentically) {
  // Two full TCP worlds with the same plan produce identical fault logs —
  // the replay guarantee the soak harness depends on.
  auto run_world = [] {
    net::World w(net::StackKind::kTcpIp, code::StackConfig::Std(),
                 code::StackConfig::Std());
    net::FaultPlan plan;
    plan.seed = 77;
    plan.start_after_frames = 4;
    plan.rates[0] = {.drop = 0.02, .corrupt = 0.02};
    plan.rates[1] = {.drop = 0.02, .corrupt = 0.02};
    w.set_fault_plan(plan);
    w.start(60);
    EXPECT_TRUE(w.run_until_roundtrips(60, 120'000'000));
    return w.fault_log();
  };
  const auto log1 = run_world();
  const auto log2 = run_world();
  EXPECT_GT(log1.size(), 0u);
  EXPECT_EQ(log1, log2);
}

TEST(SweepJson, ExtraMapIsEmitted) {
  harness::SweepRunner runner(2);
  std::vector<harness::SweepJob> jobs(1);
  jobs[0].label = "row";
  std::vector<harness::SweepOutcome> outcomes(1);
  outcomes[0].label = "row";
  outcomes[0].extra = {{"penalty_cycles", 1234.0}, {"icpi_delta", 0.25}};
  std::ostringstream os;
  harness::write_sweep_json(os, "fault_test", runner, jobs, outcomes);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"schema\":\"l96.sweep.v1\""), std::string::npos);
  EXPECT_NE(s.find("\"extra\":{\"icpi_delta\":0.25,\"penalty_cycles\":1234}"),
            std::string::npos);
}

}  // namespace
}  // namespace l96
