// Chaos soak: thousands of roundtrips under a seeded fault schedule with
// end-to-end payload integrity, clean teardown (zero pending events, zero
// live connections), frame conservation, and byte-identical replay.
// These are the PR's acceptance-criteria runs: >= 5000 roundtrips per
// stack at >= 5% combined drop+corrupt+duplicate.
#include <gtest/gtest.h>

#include "harness/soak.h"

namespace l96 {
namespace {

harness::SoakSpec chaos_spec(net::StackKind kind, std::uint64_t roundtrips,
                             std::uint64_t seed) {
  harness::SoakSpec s;
  s.kind = kind;
  s.roundtrips = roundtrips;
  s.msg_bytes = 32;
  s.plan.seed = seed;
  s.plan.start_after_frames = 4;  // let the handshake establish cleanly
  for (int p = 0; p < 2; ++p) {
    s.plan.rates[p] = {.drop = 0.02, .corrupt = 0.02, .duplicate = 0.01};
  }
  return s;
}

TEST(Soak, TcpFiveThousandRoundtripsAtFivePercent) {
  harness::SoakRunner runner(chaos_spec(net::StackKind::kTcpIp, 5000, 7));
  const auto r = runner.run();
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.roundtrips, 5000u);
  EXPECT_EQ(r.integrity_failures, 0u);
  EXPECT_EQ(r.pending_events, 0u);
  EXPECT_EQ(r.live_connections, 0u);
  EXPECT_EQ(r.reassemblies_pending, 0u);
  EXPECT_TRUE(r.conserved);
  // The schedule actually bit: faults fired and TCP recovered from them.
  EXPECT_GT(r.faults.drops, 0u);
  EXPECT_GT(r.faults.corrupts, 0u);
  EXPECT_GT(r.faults.duplicates, 0u);
  EXPECT_GT(r.tcp_retransmits, 0u);
  EXPECT_GT(r.tcp_bad_checksums, 0u);
}

TEST(Soak, RpcFiveThousandRoundtripsAtFivePercent) {
  harness::SoakRunner runner(chaos_spec(net::StackKind::kRpc, 5000, 7));
  const auto r = runner.run();
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.roundtrips, 5000u);
  EXPECT_EQ(r.integrity_failures, 0u);
  EXPECT_EQ(r.failed_calls, 0u);
  EXPECT_EQ(r.pending_events, 0u);
  EXPECT_EQ(r.busy_channels, 0u);
  EXPECT_TRUE(r.conserved);
  EXPECT_GT(r.chan_retransmits, 0u);
  EXPECT_GT(r.blast_bad_frames, 0u);
}

TEST(Soak, RpcMultiFragmentMessagesSurviveFaults) {
  // 2500-byte arguments traverse BLAST fragmentation + NACK recovery.
  auto s = chaos_spec(net::StackKind::kRpc, 800, 11);
  s.msg_bytes = 2500;
  harness::SoakRunner runner(s);
  const auto r = runner.run();
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.integrity_failures, 0u);
  EXPECT_EQ(r.reassemblies_pending, 0u);
  EXPECT_GT(r.blast_nacks, 0u);
}

TEST(Soak, ReplayIsByteIdentical) {
  // Same (seed, plan) => same virtual timeline, same fault log, same
  // recovery counts: the whole report reproduces, not just the outcome.
  const auto spec = chaos_spec(net::StackKind::kTcpIp, 800, 1234);
  const auto r1 = harness::SoakRunner(spec).run();
  const auto r2 = harness::SoakRunner(spec).run();
  ASSERT_TRUE(r1.ok()) << r1.summary();
  EXPECT_EQ(r1.summary(), r2.summary());
  EXPECT_EQ(r1.fault_log_hash, r2.fault_log_hash);
  EXPECT_EQ(r1.virtual_us, r2.virtual_us);
}

TEST(Soak, DifferentSeedsProduceDifferentSchedules) {
  auto s1 = chaos_spec(net::StackKind::kTcpIp, 400, 1);
  auto s2 = chaos_spec(net::StackKind::kTcpIp, 400, 2);
  const auto r1 = harness::SoakRunner(s1).run();
  const auto r2 = harness::SoakRunner(s2).run();
  EXPECT_TRUE(r1.ok()) << r1.summary();
  EXPECT_TRUE(r2.ok()) << r2.summary();
  EXPECT_NE(r1.fault_log_hash, r2.fault_log_hash);
}

TEST(Soak, CleanRunHasNoFaultsAndNoRecovery) {
  harness::SoakSpec s;
  s.kind = net::StackKind::kTcpIp;
  s.roundtrips = 400;
  const auto r = harness::SoakRunner(s).run();
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.faults.total(), 0u);
  EXPECT_EQ(r.tcp_retransmits, 0u);
  EXPECT_EQ(r.fault_log_hash, harness::SoakRunner(s).run().fault_log_hash);
}

}  // namespace
}  // namespace l96
