// Chaos soak: thousands of roundtrips under a seeded fault schedule with
// end-to-end payload integrity, clean teardown (zero pending events, zero
// live connections), frame conservation, and byte-identical replay.
// These are the PR's acceptance-criteria runs: >= 5000 roundtrips per
// stack at >= 5% combined drop+corrupt+duplicate.
#include <gtest/gtest.h>

#include "harness/soak.h"

namespace l96 {
namespace {

harness::SoakSpec chaos_spec(net::StackKind kind, std::uint64_t roundtrips,
                             std::uint64_t seed) {
  harness::SoakSpec s;
  s.kind = kind;
  s.roundtrips = roundtrips;
  s.msg_bytes = 32;
  s.plan.seed = seed;
  s.plan.start_after_frames = 4;  // let the handshake establish cleanly
  for (int p = 0; p < 2; ++p) {
    s.plan.rates[p] = {.drop = 0.02, .corrupt = 0.02, .duplicate = 0.01};
  }
  return s;
}

TEST(Soak, TcpFiveThousandRoundtripsAtFivePercent) {
  harness::SoakRunner runner(chaos_spec(net::StackKind::kTcpIp, 5000, 7));
  const auto r = runner.run();
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.roundtrips, 5000u);
  EXPECT_EQ(r.integrity_failures, 0u);
  EXPECT_EQ(r.pending_events, 0u);
  EXPECT_EQ(r.live_connections, 0u);
  EXPECT_EQ(r.reassemblies_pending, 0u);
  EXPECT_TRUE(r.conserved);
  // The schedule actually bit: faults fired and TCP recovered from them.
  EXPECT_GT(r.faults.drops, 0u);
  EXPECT_GT(r.faults.corrupts, 0u);
  EXPECT_GT(r.faults.duplicates, 0u);
  EXPECT_GT(r.tcp_retransmits, 0u);
  EXPECT_GT(r.tcp_bad_checksums, 0u);
}

TEST(Soak, RpcFiveThousandRoundtripsAtFivePercent) {
  harness::SoakRunner runner(chaos_spec(net::StackKind::kRpc, 5000, 7));
  const auto r = runner.run();
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.roundtrips, 5000u);
  EXPECT_EQ(r.integrity_failures, 0u);
  EXPECT_EQ(r.failed_calls, 0u);
  EXPECT_EQ(r.pending_events, 0u);
  EXPECT_EQ(r.busy_channels, 0u);
  EXPECT_TRUE(r.conserved);
  EXPECT_GT(r.chan_retransmits, 0u);
  EXPECT_GT(r.blast_bad_frames, 0u);
}

TEST(Soak, RpcMultiFragmentMessagesSurviveFaults) {
  // 2500-byte arguments traverse BLAST fragmentation + NACK recovery.
  auto s = chaos_spec(net::StackKind::kRpc, 800, 11);
  s.msg_bytes = 2500;
  harness::SoakRunner runner(s);
  const auto r = runner.run();
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.integrity_failures, 0u);
  EXPECT_EQ(r.reassemblies_pending, 0u);
  EXPECT_GT(r.blast_nacks, 0u);
}

TEST(Soak, ReplayIsByteIdentical) {
  // Same (seed, plan) => same virtual timeline, same fault log, same
  // recovery counts: the whole report reproduces, not just the outcome.
  const auto spec = chaos_spec(net::StackKind::kTcpIp, 800, 1234);
  const auto r1 = harness::SoakRunner(spec).run();
  const auto r2 = harness::SoakRunner(spec).run();
  ASSERT_TRUE(r1.ok()) << r1.summary();
  EXPECT_EQ(r1.summary(), r2.summary());
  EXPECT_EQ(r1.fault_log_hash, r2.fault_log_hash);
  EXPECT_EQ(r1.virtual_us, r2.virtual_us);
}

TEST(Soak, DifferentSeedsProduceDifferentSchedules) {
  auto s1 = chaos_spec(net::StackKind::kTcpIp, 400, 1);
  auto s2 = chaos_spec(net::StackKind::kTcpIp, 400, 2);
  const auto r1 = harness::SoakRunner(s1).run();
  const auto r2 = harness::SoakRunner(s2).run();
  EXPECT_TRUE(r1.ok()) << r1.summary();
  EXPECT_TRUE(r2.ok()) << r2.summary();
  EXPECT_NE(r1.fault_log_hash, r2.fault_log_hash);
}

TEST(Soak, TcpChaosPhaseSurvivesBlackoutAndCrashReboot) {
  // Mid-soak failure domains on top of the seeded fault schedule: a 100 ms
  // link blackout at the 1/3 mark and a 200 ms server crash/reboot at the
  // 2/3 mark.  The client rides the blackout on its rexmt timers, notices
  // the dead incarnation via keepalive, reconnects, and still finishes
  // with every clean-teardown invariant intact.
  auto s = chaos_spec(net::StackKind::kTcpIp, 1500, 7);
  s.chaos = true;
  harness::SoakRunner runner(s);
  const auto r = runner.run();
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.roundtrips, 1500u);
  EXPECT_EQ(r.integrity_failures, 0u);
  EXPECT_EQ(r.pending_events, 0u);
  EXPECT_EQ(r.live_connections, 0u);
  EXPECT_TRUE(r.conserved);
  EXPECT_GT(r.blackout_drops, 0u);       // the blackout actually bit
  EXPECT_GE(r.reconnects, 1u);           // the crash was noticed and repaired
  EXPECT_EQ(r.server_incarnation, 2u);   // exactly one reboot
  // Replay: the failure domains are part of the deterministic timeline.
  const auto r2 = harness::SoakRunner(s).run();
  EXPECT_EQ(r.summary(), r2.summary());
}

TEST(Soak, RpcChaosPhaseRidesOutTheBlackout) {
  // The RPC stack has no reconnect machinery, so its chaos phase is
  // blackout-only: CHAN's retry budget covers the outage and no call
  // fails.
  auto s = chaos_spec(net::StackKind::kRpc, 1500, 7);
  s.chaos = true;
  const auto r = harness::SoakRunner(s).run();
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.roundtrips, 1500u);
  EXPECT_EQ(r.failed_calls, 0u);
  EXPECT_GT(r.blackout_drops, 0u);
  EXPECT_EQ(r.server_incarnation, 1u);  // no crash for RPC
  EXPECT_TRUE(r.conserved);
}

TEST(Soak, CleanRunHasNoFaultsAndNoRecovery) {
  harness::SoakSpec s;
  s.kind = net::StackKind::kTcpIp;
  s.roundtrips = 400;
  const auto r = harness::SoakRunner(s).run();
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.faults.total(), 0u);
  EXPECT_EQ(r.tcp_retransmits, 0u);
  EXPECT_EQ(r.fault_log_hash, harness::SoakRunner(s).run().fault_log_hash);
}

}  // namespace
}  // namespace l96
