// Regression tests for the schema-versioned section manifest
// (harness/sections.h) and the single sanctioned emitter,
// harness::emit_section.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "harness/json.h"
#include "harness/sections.h"

namespace l96 {
namespace {

using harness::emit_section;
using harness::find_section;
using harness::Json;
using harness::kSectionManifest;
using harness::section_schema;

TEST(SectionManifestTest, RowsAreUniqueAndWellFormed) {
  std::set<std::pair<std::string, int>> seen;
  for (const auto& s : kSectionManifest) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_GE(s.version, 1);
    EXPECT_FALSE(s.producer.empty());
    // Name syntax is enforced by section_schema; a malformed manifest row
    // would make its own emitter throw.
    EXPECT_NO_THROW(section_schema(std::string(s.name), s.version));
    EXPECT_TRUE(
        seen.insert({std::string(s.name), s.version}).second)
        << "duplicate manifest row: " << s.name << " v" << s.version;
  }
}

TEST(SectionManifestTest, FindSectionMatchesManifest) {
  for (const auto& s : kSectionManifest) {
    const auto* found = find_section(s.name, s.version);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->producer, s.producer);
  }
  EXPECT_EQ(find_section("fleet", 99), nullptr);
  EXPECT_EQ(find_section("nonexistent", 1), nullptr);
}

TEST(SectionManifestTest, LbFailoverSectionIsRegistered) {
  const auto* lb = find_section("lb", 1);
  ASSERT_NE(lb, nullptr);
  EXPECT_EQ(lb->producer, "harness::lb_json");
  const Json section = emit_section("lb", 1);
  EXPECT_EQ(section.dump(), "{\"schema\":\"l96.lb.v1\"}");
}

TEST(SectionSchemaTest, FormatsAndValidates) {
  EXPECT_EQ(section_schema("fleet", 2), "l96.fleet.v2");
  EXPECT_EQ(section_schema("shard", 1), "l96.shard.v1");
  EXPECT_THROW(section_schema("", 1), std::invalid_argument);
  EXPECT_THROW(section_schema("Fleet", 1), std::invalid_argument);
  EXPECT_THROW(section_schema("fle et", 1), std::invalid_argument);
  EXPECT_THROW(section_schema("fleet", 0), std::invalid_argument);
}

TEST(EmitSectionTest, SchemaFieldComesFirstAndBodyKeysFollow) {
  Json body = Json::object();
  body.set("rows", Json::array());
  body.set("count", std::uint64_t{3});
  const Json section = emit_section("shard", 1, std::move(body));
  const std::string dump = section.dump();
  EXPECT_EQ(dump.rfind("{\"schema\":\"l96.shard.v1\"", 0), 0u)
      << "schema must be the first key: " << dump;
  EXPECT_NE(dump.find("\"rows\":[]"), std::string::npos);
  EXPECT_NE(dump.find("\"count\":3"), std::string::npos);
}

TEST(EmitSectionTest, RefusesUnlistedSections) {
  EXPECT_THROW(emit_section("fleet", 99), std::invalid_argument);
  EXPECT_THROW(emit_section("made_up", 1), std::invalid_argument);
}

TEST(EmitSectionTest, RefusesNonObjectBody) {
  EXPECT_THROW(emit_section("fleet", 2, Json("a string")),
               std::invalid_argument);
  EXPECT_THROW(emit_section("fleet", 2, Json(3.0)), std::invalid_argument);
}

TEST(EmitSectionTest, NullBodyYieldsBareSchemaObject) {
  const Json section = emit_section("fleet", 2, Json());
  EXPECT_EQ(section.dump(), "{\"schema\":\"l96.fleet.v2\"}");
}

// Every manifest row must be emittable: this is the review hook — if a
// producer bumps its version, the manifest edit lands here first.
TEST(EmitSectionTest, EveryManifestRowEmits) {
  for (const auto& s : kSectionManifest) {
    const Json section = emit_section(std::string(s.name), s.version);
    const auto* schema = section.find("schema");
    ASSERT_NE(schema, nullptr);
    ASSERT_NE(schema->as_string(), nullptr);
    EXPECT_EQ(*schema->as_string(),
              section_schema(std::string(s.name), s.version));
  }
}

}  // namespace
}  // namespace l96
