// Tests for the composed DEC 3000/600 memory hierarchy.
#include <gtest/gtest.h>

#include "sim/memsys.h"

namespace l96::sim {
namespace {

MemorySystem::Config small_cfg() {
  MemorySystem::Config c;
  c.icache_bytes = 1024;
  c.dcache_bytes = 1024;
  c.bcache_bytes = 64 * 1024;
  c.b_hit_cycles = 10;
  c.b_hit_seq_cycles = 5;
  c.dram_cycles = 26;
  return c;
}

TEST(MemSys, IfetchHitIsFree) {
  MemorySystem m(small_cfg());
  m.ifetch(0x1000);  // miss
  EXPECT_EQ(m.ifetch(0x1004), 0u);  // same block: hit
  EXPECT_EQ(m.icache().stats().accesses, 2u);
  EXPECT_EQ(m.icache().stats().misses, 1u);
}

TEST(MemSys, IfetchMissCostsDramWhenBcacheCold) {
  MemorySystem m(small_cfg());
  EXPECT_EQ(m.ifetch(0x1000), 26u);  // b-cache cold -> DRAM
}

TEST(MemSys, IfetchMissCostsBhitWhenBcacheWarm) {
  MemorySystem m(small_cfg());
  m.ifetch(0x1000);                      // warms b-cache
  m.scrub_primary(1.0, 1.0, 1);
  EXPECT_EQ(m.ifetch(0x1000), 10u);      // b-hit, non-sequential
}

TEST(MemSys, SequentialFillDiscount) {
  MemorySystem m(small_cfg());
  // Warm the b-cache with two adjacent blocks.
  m.ifetch(0x2000);
  m.ifetch(0x2020);
  m.scrub_primary(1.0, 1.0, 1);
  EXPECT_EQ(m.ifetch(0x2000), 10u);  // first miss: full b-hit cost
  EXPECT_EQ(m.ifetch(0x2020), 5u);   // sequential successor: discounted
}

TEST(MemSys, PrefetchProbesBcacheButDoesNotInstall) {
  MemorySystem m(small_cfg());
  m.ifetch(0x3000);
  // The prefetch of 0x3020 must have touched the b-cache (traffic) without
  // making 0x3020 an i-cache hit.
  EXPECT_EQ(m.bcache_traffic().from_ifetch, 2u);
  EXPECT_GT(m.ifetch(0x3020), 0u);  // still an i-cache miss
}

TEST(MemSys, LoadMissGoesThroughBcache) {
  MemorySystem m(small_cfg());
  EXPECT_EQ(m.load(0x4000), 26u);  // cold: DRAM
  EXPECT_EQ(m.load(0x4000), 0u);   // d-cache hit
  EXPECT_EQ(m.bcache_traffic().from_data, 1u);
}

TEST(MemSys, StoreStallsOnlyOnForcedRetire) {
  MemorySystem m(small_cfg());
  EXPECT_EQ(m.store(0x100), 0u);
  EXPECT_EQ(m.store(0x120), 0u);
  EXPECT_EQ(m.store(0x140), 0u);
  EXPECT_EQ(m.store(0x160), 0u);
  EXPECT_GT(m.store(0x180), 0u);  // buffer full: oldest retires
  EXPECT_EQ(m.bcache_traffic().from_writes, 1u);
}

TEST(MemSys, DrainWritesFlushesBuffer) {
  MemorySystem m(small_cfg());
  m.store(0x100);
  m.store(0x140);
  m.drain_writes();
  EXPECT_EQ(m.wbuf().pending(), 0u);
  EXPECT_EQ(m.bcache_traffic().from_writes, 2u);
}

TEST(MemSys, ScrubFullFlushesPrimaries) {
  MemorySystem m(small_cfg());
  m.ifetch(0x1000);
  m.load(0x2000);
  m.scrub_primary(1.0, 1.0, 1);
  // Both caches invalid: next accesses miss again.
  EXPECT_GT(m.ifetch(0x1000), 0u);
  EXPECT_GT(m.load(0x2000), 0u);
}

TEST(MemSys, ScrubPartialIsDeterministic) {
  auto run = [&](std::uint64_t seed) {
    MemorySystem m(small_cfg());
    for (Addr a = 0; a < 1024; a += 32) m.ifetch(0x10000 + a);
    m.scrub_primary(0.5, 0.5, seed);
    int survivors = 0;
    for (Addr a = 0; a < 1024; a += 32) {
      if (m.icache().contains(0x10000 + a)) ++survivors;
    }
    return survivors;
  };
  EXPECT_EQ(run(123), run(123));
  // ~half the lines survive.
  const int s = run(5);
  EXPECT_GT(s, 4);
  EXPECT_LT(s, 28);
}

TEST(MemSys, ScrubSeparateFractions) {
  MemorySystem m(small_cfg());
  for (Addr a = 0; a < 1024; a += 32) {
    m.ifetch(0x10000 + a);
    m.load(0x20000 + a);
  }
  m.scrub_primary(1.0, 0.0, 7);
  int i_surv = 0, d_surv = 0;
  for (Addr a = 0; a < 1024; a += 32) {
    if (m.icache().contains(0x10000 + a)) ++i_surv;
    if (m.dcache().contains(0x20000 + a)) ++d_surv;
  }
  EXPECT_EQ(i_surv, 0);
  EXPECT_EQ(d_surv, 32);
}

TEST(MemSys, ResetStatsKeepsContents) {
  MemorySystem m(small_cfg());
  m.ifetch(0x1000);
  m.reset_stats();
  EXPECT_EQ(m.icache().stats().accesses, 0u);
  EXPECT_EQ(m.ifetch(0x1000), 0u);  // still resident
}

TEST(MemSys, StallAccounting) {
  MemorySystem m(small_cfg());
  m.ifetch(0x1000);
  m.load(0x2000);
  EXPECT_EQ(m.stalls().ifetch_stall_cycles, 26u);
  EXPECT_EQ(m.stalls().load_stall_cycles, 26u);
  EXPECT_EQ(m.stalls().total(), 52u);
}

}  // namespace
}  // namespace l96::sim
