// Tests for the outlining disciplines: conservative (annotation-based, the
// paper's approach) vs profile-aggressive (the comparator it argues
// against).
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "protocols/stack_code.h"

namespace l96 {
namespace {

using code::OutlineMode;
using code::StackConfig;

StackConfig aggressive(StackConfig base) {
  base.outline_mode = OutlineMode::kProfileAggressive;
  return base;
}

TEST(OutlineModes, AggressiveProducesDenserHotPath) {
  auto cons = harness::run_config(net::StackKind::kTcpIp, StackConfig::Out(),
                                  StackConfig::Out());
  auto aggr = harness::run_config(net::StackKind::kTcpIp,
                                  aggressive(StackConfig::Out()),
                                  aggressive(StackConfig::Out()));
  // Everything the profile did not cover moves out of line: the hot
  // segment can only shrink.
  EXPECT_LT(aggr.client.static_hot_words, cons.client.static_hot_words);
  // On the profiled workload itself, aggressive costs at most a handful of
  // boundary misses.
  EXPECT_LE(aggr.client.cold.icache.misses,
            cons.client.cold.icache.misses + 10);
}

TEST(OutlineModes, AggressivePunishesUnprofiledBlocks) {
  // Lower a trace that executes a block the profile missed (a header-
  // prediction variant): under aggressive outlining that block now lives
  // out of line and costs extra control transfers.
  harness::Experiment e(net::StackKind::kTcpIp, StackConfig::Out(),
                        StackConfig::Out());
  e.run();
  auto& reg = e.world().client().registry();

  // Build an "incomplete profile": the captured trace minus every event of
  // one executed mainline block (tcp_output's win_check).
  const auto fn = reg.require("tcp_output");
  code::PathTrace incomplete;
  for (const auto& ev : e.client_trace().events) {
    if (ev.kind == code::EventKind::kBlock && ev.fn == fn &&
        ev.block == proto::blk::kOutWinCheck) {
      continue;
    }
    incomplete.events.push_back(ev);
  }

  auto build = [&](const code::PathTrace& profile) {
    StackConfig cfg = aggressive(StackConfig::Out());
    code::ImageBuilder b(reg, cfg);
    b.set_profile(profile);
    return b.build();
  };
  const code::CodeImage full_img = build(e.client_trace());
  const code::CodeImage incomplete_img = build(incomplete);

  // With the complete profile the block stays inline (hot); with the
  // incomplete profile it is outlined.
  EXPECT_FALSE(
      full_img.placement(fn, false).blocks[proto::blk::kOutWinCheck].outlined);
  EXPECT_TRUE(incomplete_img.placement(fn, false)
                  .blocks[proto::blk::kOutWinCheck]
                  .outlined);

  // Executing the real trace against the incomplete-profile image pays
  // extra taken control transfers (the cold jump and back).
  StackConfig cfg = aggressive(StackConfig::Out());
  auto count_taken = [&](const code::CodeImage& img) {
    code::Lowering lower(reg, img, cfg);
    const auto mt = lower.lower(e.client_trace());
    std::uint64_t taken = 0;
    for (const auto& in : mt) {
      if (in.cls == sim::InstrClass::kCondBranch && in.taken) ++taken;
    }
    return taken;
  };
  EXPECT_GT(count_taken(incomplete_img), count_taken(full_img));
}

TEST(OutlineModes, ConservativeIgnoresProfileGaps) {
  // The conservative discipline never outlines mainline code, profile or no
  // profile — the paper's robustness argument.
  harness::Experiment e(net::StackKind::kTcpIp, StackConfig::Out(),
                        StackConfig::Out());
  e.run();
  auto& reg = e.world().client().registry();
  const auto fn = reg.require("tcp_output");

  code::PathTrace empty_profile;
  empty_profile.events.push_back(
      {code::EventKind::kCall, reg.require("lance_intr"), 0, 0, 0});

  StackConfig cfg = StackConfig::Out();
  code::ImageBuilder b(reg, cfg);
  b.set_profile(empty_profile);
  const code::CodeImage img = b.build();
  EXPECT_FALSE(
      img.placement(fn, false).blocks[proto::blk::kOutWinCheck].outlined);
  EXPECT_TRUE(
      img.placement(fn, false).blocks[proto::blk::kOutNoBuffer].outlined);
}

}  // namespace
}  // namespace l96
