// Tests for the miss-attribution subsystem: the OwnerMap symbolization, the
// conservation property (per-owner counts sum exactly to the replay's
// aggregate CacheStats), byte-deterministic JSON emission, and the
// MeasureSpec API (wrappers byte-identical to the struct form).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>

#include "harness/missmap.h"
#include "harness/sweep.h"

namespace l96 {
namespace {

using code::StackConfig;
using sim::MissProfile;

// --- shared captures (one world per functional configuration) --------------

struct Captured {
  std::unique_ptr<net::World> world;
  harness::CaptureResult traces;
};

const Captured& capture_for(net::StackKind kind, const StackConfig& cfg) {
  static std::map<std::string, std::unique_ptr<Captured>> cache;
  const auto params = harness::MachineParams::defaults();
  const std::string key =
      harness::capture_key(kind, cfg, cfg, params.warmup_roundtrips);
  auto& slot = cache[key];
  if (!slot) {
    slot = std::make_unique<Captured>();
    slot->world = std::make_unique<net::World>(kind, cfg, cfg);
    slot->world->start(~std::uint64_t{0});
    slot->traces =
        harness::capture_traces(*slot->world, params.warmup_roundtrips);
  }
  return *slot;
}

harness::MeasureSpec client_spec(net::StackKind kind, const StackConfig& cfg,
                                 const Captured& c) {
  harness::MeasureSpec s;
  s.kind = kind;
  s.cfg = cfg;
  s.registry = &c.world->client().registry();
  s.trace = &c.traces.client;
  s.split = c.traces.client_split;
  s.seed_offset = 0;
  return s;
}

harness::MeasureSpec server_spec(net::StackKind kind, const StackConfig& cfg,
                                 const Captured& c) {
  harness::MeasureSpec s;
  s.kind = kind;
  s.cfg = cfg;
  s.registry = &c.world->server().registry();
  s.trace = &c.traces.server;
  s.split = c.traces.server_split;
  s.seed_offset = 1;
  return s;
}

// --- conservation -----------------------------------------------------------

void expect_section_internally_consistent(const MissProfile::Section& s,
                                          const char* what) {
  SCOPED_TRACE(what);
  std::uint64_t owner_misses = 0, owner_repl = 0, owner_stall = 0;
  for (const auto& o : s.owners) {
    owner_misses += o.misses;
    owner_repl += o.repl_misses;
    owner_stall += o.stall_cycles;
    EXPECT_GE(o.misses, o.repl_misses);
  }
  EXPECT_EQ(owner_misses, s.misses);
  EXPECT_EQ(owner_repl, s.repl_misses);
  EXPECT_EQ(owner_stall, s.stall_cycles);

  // Every replacement miss is charged to exactly one conflict pair.
  std::uint64_t conflict_total = 0;
  for (const auto& c : s.conflicts) conflict_total += c.count;
  EXPECT_EQ(conflict_total, s.repl_misses);

  std::uint64_t set_misses = 0;
  for (const auto& row : s.sets) {
    set_misses += row.misses;
    EXPECT_GE(row.owners, 1u);
  }
  EXPECT_EQ(set_misses, s.misses);
}

void expect_conserves(const MissProfile& p, const sim::RunResult& r,
                      const char* what) {
  SCOPED_TRACE(what);
  // The profiler saw every i-cache miss the replay counted, exactly once.
  EXPECT_EQ(p.icache.misses, r.icache.misses);
  EXPECT_EQ(p.icache.repl_misses, r.icache.repl_misses);
  EXPECT_EQ(p.icache.stall_cycles, r.stalls.ifetch_stall_cycles);
  // The d-cache is write-through read-allocate: the profiler conserves to
  // the read path alone (stores go through the write buffer).
  EXPECT_EQ(p.dcache.misses, r.dcache_reads.misses);
  EXPECT_EQ(p.dcache.repl_misses, r.dcache_reads.repl_misses);
  EXPECT_EQ(p.dcache.stall_cycles, r.stalls.load_stall_cycles);
  expect_section_internally_consistent(p.icache, "icache");
  expect_section_internally_consistent(p.dcache, "dcache");
}

void run_conservation(net::StackKind kind, const StackConfig& cfg) {
  const StackConfig functional =
      cfg.path_inlining ? StackConfig::All() : StackConfig::Std();
  const Captured& c = capture_for(kind, functional);
  for (auto make : {client_spec, server_spec}) {
    harness::MeasureSpec spec = make(kind, cfg, c);
    spec.profile_misses = true;
    const auto m = harness::measure_side(spec);
    ASSERT_TRUE(m.miss_cold);
    ASSERT_TRUE(m.miss_steady);
    expect_conserves(*m.miss_cold, m.cold, "cold");
    expect_conserves(*m.miss_steady, m.steady, "steady");
    EXPECT_GT(m.miss_cold->icache.misses, 0u);
    EXPECT_GT(m.miss_cold->dcache.misses, 0u);
  }
}

TEST(MissProfiler, ConservesTcpStd) {
  run_conservation(net::StackKind::kTcpIp, StackConfig::Std());
}

TEST(MissProfiler, ConservesTcpBad) {
  run_conservation(net::StackKind::kTcpIp, StackConfig::Bad());
}

TEST(MissProfiler, ConservesRpcAll) {
  run_conservation(net::StackKind::kRpc, StackConfig::All());
}

TEST(MissProfiler, UnprofiledMeasurementHasNoSnapshots) {
  const Captured& c =
      capture_for(net::StackKind::kTcpIp, StackConfig::Std());
  const auto m = harness::measure_side(
      client_spec(net::StackKind::kTcpIp, StackConfig::Std(), c));
  EXPECT_FALSE(m.miss_cold);
  EXPECT_FALSE(m.miss_steady);
}

TEST(MissProfiler, AttributesMissesToKnownFunctions) {
  // The hot protocol functions must appear by name; the catch-all unknown
  // owner must not dominate (the owner map covers the image and the data
  // regions the lowering actually touches).
  const Captured& c =
      capture_for(net::StackKind::kTcpIp, StackConfig::Std());
  harness::MeasureSpec spec =
      client_spec(net::StackKind::kTcpIp, StackConfig::Std(), c);
  spec.profile_misses = true;
  const auto m = harness::measure_side(spec);
  ASSERT_TRUE(m.miss_cold);
  const auto& owners = m.miss_cold->icache.owners;
  ASSERT_FALSE(owners.empty());
  bool saw_tcp_input = false;
  std::uint64_t unknown = 0;
  for (const auto& o : owners) {
    if (o.name == "tcp_input") saw_tcp_input = true;
    if (o.owner == sim::kUnknownOwner) unknown = o.misses;
  }
  EXPECT_TRUE(saw_tcp_input);
  EXPECT_LT(unknown, m.miss_cold->icache.misses / 10 + 1);
}

// --- determinism ------------------------------------------------------------

TEST(MissMapJson, ByteIdenticalAcrossRuns) {
  const Captured& c =
      capture_for(net::StackKind::kTcpIp, StackConfig::Std());
  auto measure = [&] {
    harness::MeasureSpec cs =
        client_spec(net::StackKind::kTcpIp, StackConfig::Std(), c);
    harness::MeasureSpec ss =
        server_spec(net::StackKind::kTcpIp, StackConfig::Std(), c);
    cs.profile_misses = ss.profile_misses = true;
    return harness::combine_sides(harness::measure_side(cs),
                                  harness::measure_side(ss), 0.0, false,
                                  false, harness::MachineParams::defaults());
  };
  const std::string a = harness::missmap_json(measure()).dump();
  const std::string b = harness::missmap_json(measure()).dump();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"schema\":\"l96.missmap.v1\""), std::string::npos);
  EXPECT_NE(a.find("\"client\":{\"cold\":"), std::string::npos);
  EXPECT_NE(a.find("\"conflicts_total\":"), std::string::npos);
}

TEST(MissMapJson, OmitsUnprofiledSides) {
  harness::ConfigResult r;  // no profiles attached anywhere
  const std::string s = harness::missmap_json(r).dump();
  EXPECT_EQ(s, "{\"schema\":\"l96.missmap.v1\"}");
}

// --- MeasureSpec API --------------------------------------------------------

void expect_same_measurement(const harness::SideMeasurement& a,
                             const harness::SideMeasurement& b) {
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.critical_instructions, b.critical_instructions);
  EXPECT_EQ(a.cold.cycles(), b.cold.cycles());
  EXPECT_EQ(a.cold.icache.misses, b.cold.icache.misses);
  EXPECT_EQ(a.steady.cycles(), b.steady.cycles());
  EXPECT_EQ(a.steady.icache.repl_misses, b.steady.icache.repl_misses);
  EXPECT_EQ(a.critical.cycles(), b.critical.cycles());
  // Bit-exact doubles: same inputs, same arithmetic.
  EXPECT_EQ(a.tp_us, b.tp_us);
  EXPECT_EQ(a.critical_us, b.critical_us);
  EXPECT_EQ(a.steady.cpi(), b.steady.cpi());
  EXPECT_EQ(a.steady.mcpi(), b.steady.mcpi());
}

TEST(MeasureSpec, PositionalWrapperIsByteIdentical) {
  const Captured& c =
      capture_for(net::StackKind::kTcpIp, StackConfig::Clo());
  const auto params = harness::MachineParams::defaults();
  const auto& reg = c.world->client().registry();

  const auto positional = harness::measure_side(
      net::StackKind::kTcpIp, StackConfig::Clo(), reg, c.traces.client,
      c.traces.client_split, 0, params);
  const auto structured = harness::measure_side(
      client_spec(net::StackKind::kTcpIp, StackConfig::Clo(), c));
  expect_same_measurement(positional, structured);
}

TEST(MeasureSpec, ProfileWrapperIsByteIdentical) {
  const Captured& c =
      capture_for(net::StackKind::kTcpIp, StackConfig::Out());
  const auto params = harness::MachineParams::defaults();
  const auto& reg = c.world->client().registry();

  const auto positional = harness::measure_side_with_profile(
      net::StackKind::kTcpIp, StackConfig::Out(), reg, c.traces.client,
      c.traces.client, c.traces.client_split, 0, params);
  harness::MeasureSpec spec =
      client_spec(net::StackKind::kTcpIp, StackConfig::Out(), c);
  spec.profile = &c.traces.client;
  const auto structured = harness::measure_side(spec);
  expect_same_measurement(positional, structured);
  // And an explicit profile equal to the trace matches the defaulted one.
  spec.profile = nullptr;
  expect_same_measurement(harness::measure_side(spec), structured);
}

TEST(MeasureSpec, RejectsNullRegistryAndTrace) {
  harness::MeasureSpec spec;
  EXPECT_THROW(harness::measure_side(spec), std::invalid_argument);
  const Captured& c =
      capture_for(net::StackKind::kTcpIp, StackConfig::Std());
  spec = client_spec(net::StackKind::kTcpIp, StackConfig::Std(), c);
  spec.trace = nullptr;
  EXPECT_THROW(harness::measure_side(spec), std::invalid_argument);
}

// --- OwnerMap ---------------------------------------------------------------

TEST(OwnerMap, AddOwnerDeduplicatesByName) {
  sim::OwnerMap m;
  const auto a = m.add_owner("tcp_input");
  const auto b = m.add_owner("tcp_output");
  EXPECT_NE(a, b);
  EXPECT_EQ(m.add_owner("tcp_input"), a);
  EXPECT_EQ(m.owner_count(), 3u);  // includes the "?" catch-all
  EXPECT_EQ(m.name(sim::kUnknownOwner), "?");
}

TEST(OwnerMap, LookupAndDescribe) {
  sim::OwnerMap m;
  const auto f = m.add_owner("tcp_input");
  const auto d = m.add_owner("data:arena");
  m.add_region(0x1000, 0x1100, f, sim::OwnerSegment::kHot, 3);
  m.add_region(0x2000, 0x3000, d, sim::OwnerSegment::kData);
  m.add_region(0x4000, 0x4000, f, sim::OwnerSegment::kHot);  // zero-length
  m.seal();

  EXPECT_EQ(m.owner_of(0x1000), f);
  EXPECT_EQ(m.owner_of(0x10FF), f);
  EXPECT_EQ(m.owner_of(0x1100), sim::kUnknownOwner);
  EXPECT_EQ(m.owner_of(0x2FFF), d);
  EXPECT_EQ(m.owner_of(0x4000), sim::kUnknownOwner);
  EXPECT_EQ(m.region_count(), 2u);

  EXPECT_EQ(m.describe(0x1080), "tcp_input+b3@hot");
  EXPECT_EQ(m.describe(0x2000), "data:arena@data");
  EXPECT_EQ(m.describe(0x9999), "?");
}

// --- SweepRunner integration ------------------------------------------------

TEST(SweepMissMap, ProfiledJobEmitsSection) {
  harness::SweepRunner runner(2);
  std::vector<harness::SweepJob> jobs(2);
  jobs[0].client = jobs[0].server = StackConfig::Std();
  jobs[0].profile_misses = true;
  jobs[1].client = jobs[1].server = StackConfig::Clo();
  // jobs[1] unprofiled: same functional capture, no missmap section.
  const auto outcomes = runner.run(jobs);
  // profile_misses must not fragment the trace-capture cache.
  EXPECT_EQ(runner.captures_performed(), 1u);

  ASSERT_TRUE(outcomes[0].result.client.miss_steady);
  EXPECT_FALSE(outcomes[1].result.client.miss_steady);

  std::ostringstream os;
  harness::write_sweep_json(os, "missmap_test", runner, jobs, outcomes);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"schema\":\"l96.sweep.v1\""), std::string::npos);
  EXPECT_NE(s.find("\"missmap\":{\"schema\":\"l96.missmap.v1\""),
            std::string::npos);
  // Exactly one row carries the section.
  EXPECT_EQ(s.find("l96.missmap.v1"), s.rfind("l96.missmap.v1"));
}

TEST(SweepMissMap, ExtraJsonRequiresSchemaSection) {
  harness::SweepOutcome o;
  EXPECT_THROW(o.extra_json("x", harness::Json(1.0)),
               std::invalid_argument);
  EXPECT_THROW(o.extra_json("x", harness::Json::object().set("a", 1)),
               std::invalid_argument);
  o.extra_json("x", harness::json_section("l96.test.v1").set("a", 1));
  const auto* obj = o.sections().as_object();
  ASSERT_NE(obj, nullptr);
  ASSERT_EQ(obj->size(), 1u);
  EXPECT_EQ(o.sections().find("x")->find("schema")->dump(),
            "\"l96.test.v1\"");
}

}  // namespace
}  // namespace l96
