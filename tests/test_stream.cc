// Tests for the activation-stream measurement API (harness::measure_stream
// + sim::Machine::run_stream + MissProfiler carryover attribution): a burst
// of size 1 reproduces the single-activation steady replay byte for byte,
// later positions amortize (monotone non-increasing cost), explicit
// heterogeneous sequences match the homogeneous shorthand, and per-position
// profiler rows conserve against both the section totals and the
// per-position RunResults.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "harness/experiment.h"

namespace l96 {
namespace {

using harness::MeasureSpec;
using harness::SideMeasurement;
using harness::StreamMeasurement;
using harness::StreamSpec;

// One shared capture: streams replay the client activation of an ALL/ALL
// TCP/IP world (the Experiment owns the registry the trace refers to, so
// it must outlive every spec derived from it).
harness::Experiment& experiment() {
  static harness::Experiment e(net::StackKind::kTcpIp,
                               code::StackConfig::All(),
                               code::StackConfig::All());
  e.capture();
  return e;
}

void expect_same_run(const sim::RunResult& a, const sim::RunResult& b) {
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.issue_cycles, b.issue_cycles);
  EXPECT_EQ(a.taken_branches, b.taken_branches);
  EXPECT_EQ(a.stall_cycles, b.stall_cycles);
  EXPECT_EQ(a.icache.accesses, b.icache.accesses);
  EXPECT_EQ(a.icache.misses, b.icache.misses);
  EXPECT_EQ(a.icache.repl_misses, b.icache.repl_misses);
  EXPECT_EQ(a.dcache_combined.accesses, b.dcache_combined.accesses);
  EXPECT_EQ(a.dcache_combined.misses, b.dcache_combined.misses);
  EXPECT_EQ(a.bcache.misses, b.bcache.misses);
}

TEST(StreamTest, PositionZeroIsByteIdenticalToSteadyReplay) {
  const MeasureSpec spec = experiment().client_spec();
  const SideMeasurement side = harness::measure_side(spec);

  StreamSpec sspec;
  sspec.base = spec;
  sspec.burst = 1;
  const StreamMeasurement one = harness::measure_stream(sspec);
  ASSERT_EQ(one.positions.size(), 1u);
  expect_same_run(side.steady, one.positions[0].steady);
  EXPECT_DOUBLE_EQ(side.tp_us, one.positions[0].tp_us);

  // Position 0 is unchanged by the burst that follows it: the later
  // activations run after the measured window.
  sspec.burst = 4;
  const StreamMeasurement four = harness::measure_stream(sspec);
  ASSERT_EQ(four.positions.size(), 4u);
  expect_same_run(side.steady, four.positions[0].steady);
  EXPECT_DOUBLE_EQ(side.tp_us, four.positions[0].tp_us);
}

TEST(StreamTest, PositionsAmortizeMonotonically) {
  StreamSpec sspec;
  sspec.base = experiment().client_spec();
  sspec.burst = 4;
  const StreamMeasurement m = harness::measure_stream(sspec);
  ASSERT_EQ(m.positions.size(), 4u);
  for (std::size_t i = 1; i < m.positions.size(); ++i) {
    EXPECT_LE(m.positions[i].tp_us, m.positions[i - 1].tp_us)
        << "position " << i << " priced above its predecessor";
    EXPECT_LE(m.positions[i].steady.icache.misses,
              m.positions[i - 1].steady.icache.misses);
  }
  // The scrub between bursts is what position 0 pays for; with no scrub
  // inside the burst the amortization must be strict.
  EXPECT_LT(m.steady_us(), m.first_us());
  EXPECT_DOUBLE_EQ(m.first_us(), m.positions.front().tp_us);
  EXPECT_DOUBLE_EQ(m.steady_us(), m.positions.back().tp_us);
}

TEST(StreamTest, ExplicitSequenceMatchesHomogeneousBurst) {
  const MeasureSpec spec = experiment().client_spec();
  StreamSpec burst;
  burst.base = spec;
  burst.burst = 3;
  StreamSpec explicit_seq;
  explicit_seq.base = spec;
  explicit_seq.activations = {spec.trace, spec.trace, spec.trace};

  const StreamMeasurement a = harness::measure_stream(burst);
  const StreamMeasurement b = harness::measure_stream(explicit_seq);
  ASSERT_EQ(a.positions.size(), b.positions.size());
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    expect_same_run(a.positions[i].steady, b.positions[i].steady);
    EXPECT_DOUBLE_EQ(a.positions[i].tp_us, b.positions[i].tp_us);
  }
}

TEST(StreamTest, CarryoverRowsConserveAgainstTotalsAndRunResults) {
  StreamSpec sspec;
  sspec.base = experiment().client_spec();
  sspec.base.profile_misses = true;
  sspec.burst = 3;
  const StreamMeasurement m = harness::measure_stream(sspec);
  ASSERT_NE(m.miss, nullptr);

  for (const sim::ProfiledCache c :
       {sim::ProfiledCache::kICache, sim::ProfiledCache::kDCache}) {
    const sim::MissProfile::Section& s = m.miss->cache(c);
    ASSERT_EQ(s.positions.size(), 3u);

    // Per-position rows sum to the section totals.
    std::uint64_t misses = 0, repl = 0, stalls = 0, carry = 0;
    for (const auto& row : s.positions) {
      misses += row.misses;
      repl += row.repl_misses;
      stalls += row.stall_cycles;
      carry += row.carryover_hits;
    }
    EXPECT_EQ(misses, s.misses);
    EXPECT_EQ(repl, s.repl_misses);
    EXPECT_EQ(stalls, s.stall_cycles);
    EXPECT_EQ(carry, s.carryover_hits);

    // Owner rows carry the same carryover total.
    std::uint64_t owner_carry = 0;
    for (const auto& row : s.owners) owner_carry += row.carryover_hits;
    EXPECT_EQ(owner_carry, s.carryover_hits);

    // Nothing precedes position 0, so nothing can carry over into it.
    EXPECT_EQ(s.positions[0].carryover_hits, 0u);
  }

  // Position 0 misses on the blocks the scrub evicted; position 1 hits
  // them again — the whole point of the burst — so i-cache carryover at
  // position 1 must be strictly positive.
  EXPECT_GT(m.miss->icache.positions[1].carryover_hits, 0u);

  // Per-position profiler rows match the per-position RunResults (the
  // memory system resets its stats at each boundary).
  for (std::size_t i = 0; i < m.positions.size(); ++i) {
    EXPECT_EQ(m.miss->icache.positions[i].misses,
              m.positions[i].steady.icache.misses)
        << "i-cache position " << i;
    EXPECT_EQ(m.miss->dcache.positions[i].misses,
              m.positions[i].steady.dcache_reads.misses)
        << "d-cache position " << i;
  }
}

TEST(StreamTest, SingleActivationProfileHasOnePositionAndNoCarryover) {
  StreamSpec sspec;
  sspec.base = experiment().client_spec();
  sspec.base.profile_misses = true;
  sspec.burst = 1;
  const StreamMeasurement m = harness::measure_stream(sspec);
  ASSERT_NE(m.miss, nullptr);
  EXPECT_EQ(m.miss->icache.positions.size(), 1u);
  EXPECT_EQ(m.miss->icache.carryover_hits, 0u);
  EXPECT_EQ(m.miss->dcache.carryover_hits, 0u);
}

TEST(StreamTest, RejectsMalformedSpecs) {
  StreamSpec sspec;
  sspec.base = experiment().client_spec();
  sspec.burst = 0;
  EXPECT_THROW(harness::measure_stream(sspec), std::invalid_argument);

  sspec.burst = 1;
  sspec.activations = {sspec.base.trace, nullptr};
  EXPECT_THROW(harness::measure_stream(sspec), std::invalid_argument);

  StreamSpec no_trace;
  no_trace.base = experiment().client_spec();
  no_trace.base.trace = nullptr;
  EXPECT_THROW(harness::measure_stream(no_trace), std::invalid_argument);
}

}  // namespace
}  // namespace l96
