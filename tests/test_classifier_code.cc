// The classifier's code model and its measured pricing.
//
// register_classifier_code puts the flow-cache probe and the tuple-space
// lookup into the code registry as first-class kPath functions, so the
// classification cost is lowered, replayed, and cache-attributed exactly
// like protocol code.  measure_classifier_costs fits FlowCacheCosts
// coefficients from those replays.  These tests pin the registration
// surface, the trace shapes each activation emits, and the fitted
// coefficients' invariants (sanity, provenance flag, determinism).
#include <gtest/gtest.h>

#include <stdexcept>

#include "code/classifier.h"
#include "code/flow_cache.h"
#include "code/model.h"
#include "code/trace.h"
#include "harness/classify.h"
#include "protocols/rulegen.h"
#include "protocols/stack_code.h"

namespace l96 {
namespace {

code::CodeRegistry classifier_registry(const code::StackConfig& cfg) {
  code::CodeRegistry reg;
  proto::register_common_code(reg, cfg);
  proto::register_tcpip_code(reg, cfg);
  proto::register_classifier_code(reg, cfg);
  return reg;
}

TEST(ClassifierCode, RegistersAllSixFunctions) {
  const auto reg = classifier_registry(code::StackConfig::Std());
  for (const char* name :
       {"classify_cache", "classify_lookup", "classify_hash",
        "classify_probe", "classify_verify", "classify_linear"}) {
    EXPECT_NO_THROW(reg.require(name)) << name;
  }
}

// Count events in `t` of kind `k` on function `fn` (kInvalidFn = any).
std::size_t count_events(const code::PathTrace& t, code::EventKind k,
                         code::FnId fn = code::kInvalidFn) {
  std::size_t n = 0;
  for (const auto& e : t.events) {
    if (e.kind == k && (fn == code::kInvalidFn || e.fn == fn)) ++n;
  }
  return n;
}

TEST(ClassifierCode, TraceShapesMatchTheActivations) {
  const auto reg = classifier_registry(code::StackConfig::Std());
  const auto lookup = reg.require("classify_lookup");
  const auto cache = reg.require("classify_cache");
  const auto c = proto::build_scaled_classifier(proto::RuleSetKind::kTcpIp,
                                                /*decoys=*/64, /*seed=*/1);
  ASSERT_TRUE(c.tuple_active());
  const auto frame = harness::classifier_match_frame(net::StackKind::kTcpIp);
  code::ClassifyProbeLog log;
  const auto scan = c.classify_scan(frame, &log);
  ASSERT_TRUE(scan.path_id.has_value());
  const auto entry = proto::flow_cache_entry_addr(0);

  // Fresh hit: the cache probe answers — no lookup call, no store, one
  // load of the entry.
  {
    code::PathTrace t;
    code::Recorder rec;
    rec.enable(&t);
    code::FlowLookupResult lr;
    lr.path_id = scan.path_id;
    lr.cache_hit = true;
    proto::trace_classification(rec, reg, lr, {}, entry);
    rec.disable();
    EXPECT_EQ(count_events(t, code::EventKind::kCall, cache), 1u);
    EXPECT_EQ(count_events(t, code::EventKind::kCall, lookup), 0u);
    EXPECT_EQ(count_events(t, code::EventKind::kStore), 0u);
    EXPECT_GE(count_events(t, code::EventKind::kLoad), 1u);
  }

  // Miss: probe, full scan, then the memoizing store of the entry.
  {
    code::PathTrace t;
    code::Recorder rec;
    rec.enable(&t);
    code::FlowLookupResult lr;
    lr.path_id = scan.path_id;
    lr.scanned = true;
    lr.scan_matched = true;
    lr.rules_examined = scan.rules_examined;
    lr.tuples_probed = scan.tuples_probed;
    lr.candidates_verified = scan.candidates_verified;
    lr.tuple_engine = scan.tuple_engine;
    proto::trace_classification(rec, reg, lr, log, entry);
    rec.disable();
    EXPECT_EQ(count_events(t, code::EventKind::kCall, cache), 1u);
    EXPECT_EQ(count_events(t, code::EventKind::kCall, lookup), 1u);
    EXPECT_GE(count_events(t, code::EventKind::kStore), 1u);
  }

  // Unkeyed frame: bare scan, no cache function at all.
  {
    code::PathTrace t;
    code::Recorder rec;
    rec.enable(&t);
    code::FlowLookupResult lr;
    lr.path_id = scan.path_id;
    lr.scanned = true;
    lr.scan_matched = true;
    lr.rules_examined = scan.rules_examined;
    lr.tuples_probed = scan.tuples_probed;
    lr.candidates_verified = scan.candidates_verified;
    lr.tuple_engine = scan.tuple_engine;
    proto::trace_classification(rec, reg, lr, log, std::nullopt);
    rec.disable();
    EXPECT_EQ(count_events(t, code::EventKind::kCall, cache), 0u);
    EXPECT_EQ(count_events(t, code::EventKind::kCall, lookup), 1u);
  }
}

TEST(ClassifierCode, MeasuredCostsAreSaneUnderEveryLayout) {
  for (const auto& cfg :
       {code::StackConfig::Std(), code::StackConfig::Bad(),
        code::StackConfig::Clo(), code::StackConfig::All()}) {
    harness::ClassifierCostSpec spec;
    spec.cfg = cfg;
    spec.rules = 96;
    const auto m = harness::measure_classifier_costs(spec);
    SCOPED_TRACE(cfg.name);
    EXPECT_TRUE(m.costs.measured);
    EXPECT_GE(m.costs.hit_us, 0.0);
    EXPECT_GE(m.costs.probe_us, 0.0);
    EXPECT_GE(m.costs.per_rule_us, 0.0);
    // A hit skips the whole scan: it must be cheaper than either miss.
    EXPECT_LT(m.hit.tp_us, m.miss_match.tp_us);
    EXPECT_LT(m.hit.tp_us, m.miss_nomatch.tp_us);
    EXPECT_EQ(m.num_paths, 97u);
    EXPECT_TRUE(m.tuple_engine);
    EXPECT_GT(m.scan_match.rules_examined, 0u);
    EXPECT_TRUE(m.scan_match.path_id.has_value());
    // The nomatch frame's foreign ethertype hashes into no occupied
    // bucket: the tuple engine rejects it having examined zero rules.
    EXPECT_FALSE(m.scan_nomatch.path_id.has_value());
  }
}

TEST(ClassifierCode, MeasurementIsBitwiseDeterministic) {
  harness::ClassifierCostSpec spec;
  spec.cfg = code::StackConfig::All();
  spec.rules = 256;
  const auto a = harness::measure_classifier_costs(spec);
  const auto b = harness::measure_classifier_costs(spec);
  EXPECT_EQ(a.costs.hit_us, b.costs.hit_us);
  EXPECT_EQ(a.costs.probe_us, b.costs.probe_us);
  EXPECT_EQ(a.costs.per_rule_us, b.costs.per_rule_us);
  EXPECT_EQ(a.hit.tp_us, b.hit.tp_us);
  EXPECT_EQ(a.miss_match.tp_us, b.miss_match.tp_us);
  EXPECT_EQ(a.miss_nomatch.tp_us, b.miss_nomatch.tp_us);
}

TEST(ClassifierCode, RejectsTheFlatAnalyticKnob) {
  harness::ClassifierCostSpec spec;
  spec.cfg = code::StackConfig::Std();
  spec.params.classifier_overhead_us = 0.5;
  EXPECT_THROW(harness::measure_classifier_costs(spec),
               std::invalid_argument);
}

TEST(ClassifierCode, LinearAndTupleEnginesBothPriceable) {
  // Forcing either engine still yields a valid fit; the tuple engine's
  // per-rule slope prices less marginal work because its nomatch scan
  // examines far fewer rules.
  harness::ClassifierCostSpec spec;
  spec.cfg = code::StackConfig::Std();
  spec.rules = 256;
  spec.engine = code::PacketClassifier::Engine::kLinear;
  const auto lin = harness::measure_classifier_costs(spec);
  spec.engine = code::PacketClassifier::Engine::kTuple;
  const auto tup = harness::measure_classifier_costs(spec);
  EXPECT_FALSE(lin.tuple_engine);
  EXPECT_TRUE(tup.tuple_engine);
  EXPECT_GT(lin.scan_nomatch.rules_examined,
            10 * tup.scan_nomatch.rules_examined);
  // The decision itself is engine-independent.
  EXPECT_EQ(lin.scan_match.path_id, tup.scan_match.path_id);
}

TEST(ClassifierCode, MissProfilesAttributeClassifierOwners) {
  harness::ClassifierCostSpec spec;
  spec.cfg = code::StackConfig::All();
  spec.rules = 256;
  spec.profile_misses = true;
  const auto m = harness::measure_classifier_costs(spec);
  ASSERT_NE(m.miss_nomatch.miss_cold, nullptr);
  bool classifier_owner_seen = false;
  for (const auto& row : m.miss_nomatch.miss_cold->icache.owners) {
    if (row.name.rfind("classify_", 0) == 0 && row.misses > 0) {
      classifier_owner_seen = true;
    }
  }
  EXPECT_TRUE(classifier_owner_seen)
      << "no classify_* owner charged any i-cache miss in the cold "
         "nomatch replay";
}

}  // namespace
}  // namespace l96
