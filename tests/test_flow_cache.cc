// Tests for the flow-aware classification cache (code/flow_cache.h):
// analytic hit ratios per scheme, stale invalidation, and the cost model.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "code/flow_cache.h"
#include "harness/fleet.h"
#include "net/world.h"
#include "protocols/stack_code.h"

namespace l96 {
namespace {

using code::FlowCache;
using code::FlowCacheCosts;
using code::FlowCacheScheme;
using code::FlowKeySpec;

// Frames are {flow_id, 0x45}: byte 0 keys the flow, byte 1 satisfies the
// classifier (every flow takes the same path — many flows, one path, the
// demux structure the cache exists for).
FlowKeySpec test_spec() { return {{{.offset = 0, .size = 1}}}; }

code::PacketClassifier test_classifier() {
  code::PacketClassifier c;
  c.add_path("decoy", 1,
             {{.offset = 1, .size = 1, .mask = 0xFF, .value = 0x99}});
  c.add_path("input", 2,
             {{.offset = 1, .size = 1, .mask = 0xFF, .value = 0x45}});
  return c;
}

std::vector<std::uint8_t> flow_frame(std::uint8_t flow) {
  return {flow, 0x45};
}

TEST(FlowKeySpec, FrameExtractionMatchesExplicitValues) {
  const FlowKeySpec spec{{{.offset = 0, .size = 1}, {.offset = 2, .size = 2}}};
  const std::vector<std::uint8_t> frame = {0xAA, 0x00, 0xBB, 0xCC};
  const auto key = spec.key_of(frame);
  ASSERT_TRUE(key.has_value());
  const std::uint32_t vals[] = {0xAA, 0xBBCC};
  EXPECT_EQ(*key, spec.key_of_values(vals));
  // Values are truncated to the field width, mirroring extraction.
  const std::uint32_t wide[] = {0x1AA, 0xBBCC};
  EXPECT_EQ(*key, spec.key_of_values(wide));
}

TEST(FlowKeySpec, TcpIpSpecMatchesHostInvalidationTuple) {
  // The server-side invalidation path builds the key from the connection
  // tuple (remote ip, remote port, local port); an inbound frame's fields
  // (src ip @26, src port @34, dst port @36) must produce the same key.
  const FlowKeySpec spec = proto::tcpip_flow_key_spec();
  std::vector<std::uint8_t> frame(64, 0);
  frame[26] = 10; frame[27] = 0; frame[28] = 0; frame[29] = 1;   // 10.0.0.1
  frame[34] = 0x27; frame[35] = 0x11;                            // 10001
  frame[36] = 0x1B; frame[37] = 0x58;                            // 7000
  const auto key = spec.key_of(frame);
  ASSERT_TRUE(key.has_value());
  const std::uint32_t tuple[] = {0x0A000001u, 10001u, 7000u};
  EXPECT_EQ(*key, spec.key_of_values(tuple));
}

TEST(FlowCache, ShortFrameBypassesCache) {
  auto classifier = test_classifier();
  FlowCache cache({{{.offset = 5, .size = 2}}}, FlowCacheScheme::kLru, 4);
  const std::vector<std::uint8_t> shorty = {0x01, 0x45};
  const auto r = cache.lookup(classifier, shorty);
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ(cache.stats().unkeyed, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(FlowCache, OneBehindPingPongIsTheWorstCase) {
  // Jain's one-behind cache holds exactly the previous flow: a strict
  // A,B,A,B alternation never hits — the analytic worst case.
  auto classifier = test_classifier();
  FlowCache cache(test_spec(), FlowCacheScheme::kOneBehind, /*capacity=*/8);
  EXPECT_EQ(cache.capacity(), 1u);  // scheme forces a single entry
  for (int i = 0; i < 50; ++i) {
    cache.lookup(classifier, flow_frame(i % 2 == 0 ? 0xA : 0xB));
  }
  EXPECT_EQ(cache.stats().lookups, 50u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 50u);

  // And a single-flow run is its best case: every lookup after the first.
  cache.reset_stats();
  cache.clear();
  for (int i = 0; i < 50; ++i) cache.lookup(classifier, flow_frame(0xA));
  EXPECT_EQ(cache.stats().hits, 49u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(FlowCache, DirectMappedConflictPairThrashes) {
  auto classifier = test_classifier();
  const FlowKeySpec spec = test_spec();
  FlowCache cache(spec, FlowCacheScheme::kDirectMapped, /*capacity=*/4);

  // Find two flows that collide in one slot and one that does not.
  const std::size_t slot_a = cache.slot_of(spec.key_of(flow_frame(0))
                                               .value());
  std::uint8_t conflict = 0, free_flow = 0;
  for (std::uint8_t f = 1; f != 0; ++f) {
    const std::size_t s = cache.slot_of(spec.key_of(flow_frame(f)).value());
    if (s == slot_a && conflict == 0) conflict = f;
    if (s != slot_a && free_flow == 0) free_flow = f;
    if (conflict != 0 && free_flow != 0) break;
  }
  ASSERT_NE(conflict, 0);
  ASSERT_NE(free_flow, 0);

  // Conflict pair alternating: both map to one slot, zero hits.
  for (int i = 0; i < 40; ++i) {
    cache.lookup(classifier, flow_frame(i % 2 == 0 ? 0 : conflict));
  }
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 40u);

  // Non-conflicting pair: one compulsory miss each, hits thereafter — the
  // same access pattern, so the loss above is purely the slot conflict.
  cache.clear();
  cache.reset_stats();
  for (int i = 0; i < 40; ++i) {
    cache.lookup(classifier, flow_frame(i % 2 == 0 ? 0 : free_flow));
  }
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 38u);
}

TEST(FlowCache, LruEvictsLeastRecentlyUsed) {
  auto classifier = test_classifier();
  FlowCache cache(test_spec(), FlowCacheScheme::kLru, /*capacity=*/2);
  cache.lookup(classifier, flow_frame(0xA));  // miss
  cache.lookup(classifier, flow_frame(0xB));  // miss
  cache.lookup(classifier, flow_frame(0xA));  // hit; B is now LRU
  cache.lookup(classifier, flow_frame(0xC));  // miss, evicts B
  EXPECT_TRUE(cache.lookup(classifier, flow_frame(0xA)).cache_hit);
  EXPECT_FALSE(cache.lookup(classifier, flow_frame(0xB)).cache_hit);
}

TEST(FlowCache, SchemeOrderingUnderZipf) {
  // Jain's ordering on one deterministic Zipf(1.2) stream over 16 flows
  // with 4-entry caches: LRU >= direct-mapped >= one-behind.
  auto classifier = test_classifier();
  const auto ratio = [&](FlowCacheScheme scheme) {
    FlowCache cache(test_spec(), scheme, /*capacity=*/4);
    harness::ZipfSampler zipf(16, 1.2, /*seed=*/7);
    for (int i = 0; i < 2000; ++i) {
      cache.lookup(classifier,
                   flow_frame(static_cast<std::uint8_t>(zipf.next())));
    }
    return cache.stats().hit_ratio();
  };
  const double ob = ratio(FlowCacheScheme::kOneBehind);
  const double dm = ratio(FlowCacheScheme::kDirectMapped);
  const double lru = ratio(FlowCacheScheme::kLru);
  EXPECT_GE(lru, dm);
  EXPECT_GE(dm, ob);
  EXPECT_GT(lru, 0.5);  // the hot flows fit in 4 entries
  EXPECT_GT(ob, 0.0);   // back-to-back repeats of the hottest flow
}

TEST(FlowCache, StaleHitAfterInvalidationTakesSlowPathOnce) {
  auto classifier = test_classifier();
  const FlowKeySpec spec = test_spec();
  const FlowCacheCosts costs{.hit_us = 0.5, .probe_us = 1.0,
                             .per_rule_us = 2.0};
  FlowCache cache(spec, FlowCacheScheme::kLru, 4, costs);

  auto r = cache.lookup(classifier, flow_frame(0xA));
  EXPECT_FALSE(r.cache_hit);
  // Miss cost: probe + 2 rules examined (decoy's rule fails, input's hits).
  EXPECT_DOUBLE_EQ(r.cost_us, 1.0 + 2 * 2.0);
  EXPECT_EQ(r.rules_examined, 2u);

  r = cache.lookup(classifier, flow_frame(0xA));
  EXPECT_TRUE(r.cache_hit);
  EXPECT_FALSE(r.stale);
  EXPECT_DOUBLE_EQ(r.cost_us, 0.5);
  EXPECT_EQ(r.path_id, 2);

  // Connection churn invalidates the flow; the entry stays resident.
  cache.invalidate(spec.key_of(flow_frame(0xA)).value());
  r = cache.lookup(classifier, flow_frame(0xA));
  EXPECT_TRUE(r.cache_hit);
  EXPECT_TRUE(r.stale);  // caller must route this packet to the slow path
  EXPECT_EQ(r.path_id, 2);
  EXPECT_DOUBLE_EQ(r.cost_us, 1.0 + 2 * 2.0);  // full re-scan
  EXPECT_EQ(cache.stats().stale_hits, 1u);

  // The stale lookup refreshed the entry: the flow is clean again.
  r = cache.lookup(classifier, flow_frame(0xA));
  EXPECT_TRUE(r.cache_hit);
  EXPECT_FALSE(r.stale);

  // Invalidating an unknown key is a no-op.
  cache.invalidate(spec.key_of(flow_frame(0x77)).value());
  EXPECT_EQ(cache.stats().stale_hits, 1u);

  // hits excludes stale hits; cost_us conserves over all lookups.
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().cost_us, 5.0 + 0.5 + 5.0 + 0.5);
}

TEST(FlowCache, ClearDropsEntriesAndInvalidationsButKeepsCounters) {
  // clear() is the crash semantics: entries and pending invalidations die
  // with the incarnation, the counters are history and survive.
  auto classifier = test_classifier();
  FlowCache cache(test_spec(), FlowCacheScheme::kLru, 4);
  cache.lookup(classifier, flow_frame(0xA));  // miss, memoized
  cache.lookup(classifier, flow_frame(0xA));  // hit
  cache.invalidate(test_spec().key_of(flow_frame(0xA)).value());
  cache.clear();
  const auto r = cache.lookup(classifier, flow_frame(0xA));
  EXPECT_FALSE(r.cache_hit);  // the entry died with the incarnation
  EXPECT_FALSE(r.stale);      // and so did the pending invalidation
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().stale_hits, 0u);
}

TEST(FlowCache, ServerCrashFlushesTheCacheAgainstTheDeadIncarnation) {
  // Regression: a rebooted server must not serve cached classifications
  // specialized on connections that died with the old incarnation.  The
  // reconnecting client reuses its 4-tuple, so without the crash-time
  // flush the new connection's first frame would hit the corpse's entry;
  // with it, the flow re-enters through a clean full-scan miss and no new
  // stale hit is ever recorded against the dead incarnation.
  // The flow cache sits on the path-inlining guard, so the server needs a
  // PIN image; the client config is irrelevant to the cache under test.
  net::World w(net::StackKind::kTcpIp, code::StackConfig::Std(),
               code::StackConfig::Pin());
  w.server().enable_flow_cache(code::FlowCacheScheme::kLru, 8);
  w.client().set_tcp_keepalive(100'000, 50'000, 2);
  w.client().tcptest()->enable_reconnect();
  w.server().set_reboot_hook(
      [&w] { w.server().tcptest()->serve(net::World::kTcpServerPort); });
  w.start(30);
  ASSERT_TRUE(w.run_until_roundtrips(10));
  const code::FlowCacheStats before = w.server().flow_cache()->stats();
  EXPECT_GT(before.hits, 0u);

  w.server().crash();
  w.server().reboot();
  ASSERT_TRUE(w.run_until_roundtrips(30, 120'000'000));
  EXPECT_GE(w.client().tcptest()->reconnects(), 1u);
  const code::FlowCacheStats after = w.server().flow_cache()->stats();
  EXPECT_EQ(after.stale_hits, before.stale_hits);  // zero new stale hits
  EXPECT_GT(after.misses, before.misses);  // the flush forced a clean miss
  EXPECT_GT(after.hits, before.hits);      // then the flow re-warmed
}

TEST(FlowCache, LbRemapStaleHitsExactlyOnceThenRekeys) {
  // The LB-remap scenario: flows are pinned to a backend through the
  // resolver; when a backend leaves the pool, invalidate_path() marks its
  // flows stale and each one must take the slow path exactly once, pick
  // up the new binding, and hit fresh from then on.
  auto classifier = test_classifier();
  FlowCache cache(test_spec(), FlowCacheScheme::kLru, /*capacity=*/8);

  int backend_of_flow = 3;  // what the "Maglev table" currently says
  std::uint64_t resolutions = 0;
  const FlowCache::PathResolver resolver = [&](code::FlowKey) {
    ++resolutions;
    return backend_of_flow;
  };

  // Warm two flows onto backend 3 and one onto backend 5.
  ASSERT_EQ(cache.lookup(classifier, flow_frame(0xA), resolver).path_id, 3);
  ASSERT_EQ(cache.lookup(classifier, flow_frame(0xB), resolver).path_id, 3);
  backend_of_flow = 5;
  ASSERT_EQ(cache.lookup(classifier, flow_frame(0xC), resolver).path_id, 5);
  EXPECT_EQ(resolutions, 3u);  // resolved once per flow, not per packet

  // Steady state: fresh hits return the pinned binding, resolver silent.
  for (int i = 0; i < 10; ++i) {
    const auto r = cache.lookup(classifier, flow_frame(0xA), resolver);
    EXPECT_TRUE(r.cache_hit);
    EXPECT_FALSE(r.stale);
    EXPECT_EQ(r.path_id, 3);
  }
  EXPECT_EQ(resolutions, 3u);

  // Backend 3 leaves the pool: exactly its two flows invalidate.
  backend_of_flow = 7;  // survivors; the rebuilt table steers here now
  EXPECT_EQ(cache.invalidate_path(3), 2u);
  EXPECT_EQ(cache.invalidate_path(3), 0u);  // idempotent

  const auto stale_a = cache.lookup(classifier, flow_frame(0xA), resolver);
  EXPECT_TRUE(stale_a.cache_hit);
  EXPECT_TRUE(stale_a.stale);     // slow path, exactly this packet
  EXPECT_EQ(stale_a.path_id, 7);  // rebound through the resolver
  EXPECT_EQ(resolutions, 4u);

  const auto fresh_a = cache.lookup(classifier, flow_frame(0xA), resolver);
  EXPECT_TRUE(fresh_a.cache_hit);
  EXPECT_FALSE(fresh_a.stale);  // re-keyed: the stale hit happened once
  EXPECT_EQ(fresh_a.path_id, 7);
  EXPECT_EQ(resolutions, 4u);

  // The unrelated flow on backend 5 never noticed the remap.
  const auto r_c = cache.lookup(classifier, flow_frame(0xC), resolver);
  EXPECT_TRUE(r_c.cache_hit);
  EXPECT_FALSE(r_c.stale);
  EXPECT_EQ(r_c.path_id, 5);
  EXPECT_EQ(cache.stats().stale_hits, 1u);  // 0xB hasn't sent yet
}

TEST(FlowCache, ResolverEmptyPoolIsNotMemoized) {
  auto classifier = test_classifier();
  FlowCache cache(test_spec(), FlowCacheScheme::kLru, 4);
  int backend = -1;  // pool empty
  const FlowCache::PathResolver resolver = [&](code::FlowKey) {
    return backend;
  };

  const auto r1 = cache.lookup(classifier, flow_frame(0xA), resolver);
  EXPECT_FALSE(r1.path_id.has_value());  // no backend to bind
  EXPECT_GT(r1.rules_examined, 0u);      // the scan still ran (and priced)

  // Nothing was memoized: once the pool recovers, the same flow misses
  // again and binds to the restored backend instead of a cached "none".
  backend = 2;
  const auto r2 = cache.lookup(classifier, flow_frame(0xA), resolver);
  EXPECT_FALSE(r2.cache_hit);
  EXPECT_EQ(r2.path_id, 2);
  const auto r3 = cache.lookup(classifier, flow_frame(0xA), resolver);
  EXPECT_TRUE(r3.cache_hit);
  EXPECT_EQ(r3.path_id, 2);
}

TEST(FlowCache, NegativeScansAreMemoizedAndCounted) {
  // A keyed frame matching no path is scanned once, then the nullopt
  // binding is served from the cache like any other — the DEC-TR-592
  // cache works for negative destinations too.  unmatched_scans counts
  // only the scans that actually ran and found nothing.
  auto classifier = test_classifier();
  FlowCache cache(test_spec(), FlowCacheScheme::kLru, 4);
  const std::vector<std::uint8_t> odd = {0xA, 0x00};  // byte1 matches no rule

  auto r = cache.lookup(classifier, odd);
  EXPECT_FALSE(r.cache_hit);
  EXPECT_TRUE(r.scanned);
  EXPECT_FALSE(r.scan_matched);
  EXPECT_EQ(r.path_id, std::nullopt);
  EXPECT_EQ(cache.stats().unmatched_scans, 1u);

  r = cache.lookup(classifier, odd);
  EXPECT_TRUE(r.cache_hit);
  EXPECT_FALSE(r.scanned);  // memoized: no re-scan of the rule table
  EXPECT_EQ(r.path_id, std::nullopt);
  EXPECT_EQ(cache.stats().unmatched_scans, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  // Churn invalidation forces exactly one re-scan of the negative entry,
  // after which the refreshed binding serves hits again.
  cache.invalidate(test_spec().key_of(odd).value());
  r = cache.lookup(classifier, odd);
  EXPECT_TRUE(r.stale);
  EXPECT_TRUE(r.scanned);
  EXPECT_EQ(cache.stats().unmatched_scans, 2u);
  r = cache.lookup(classifier, odd);
  EXPECT_TRUE(r.cache_hit);
  EXPECT_FALSE(r.stale);
  EXPECT_EQ(cache.stats().unmatched_scans, 2u);

  // Matching traffic never touches the counter.
  cache.lookup(classifier, flow_frame(0xB));
  cache.lookup(classifier, flow_frame(0xB));
  EXPECT_EQ(cache.stats().unmatched_scans, 2u);
}

TEST(FlowCache, UnkeyedUnmatchedFramesRescanEveryTime) {
  // Frames too short for the key spec bypass the cache by design: every
  // lookup is a fresh scan, and every no-match scan counts.
  auto classifier = test_classifier();
  FlowCache cache({{{.offset = 5, .size = 2}}}, FlowCacheScheme::kLru, 4);
  const std::vector<std::uint8_t> shorty = {0xA, 0x00};
  for (int i = 0; i < 3; ++i) {
    const auto r = cache.lookup(classifier, shorty);
    EXPECT_FALSE(r.cache_hit);
    EXPECT_TRUE(r.scanned);
    EXPECT_FALSE(r.scan_matched);
  }
  EXPECT_EQ(cache.stats().unkeyed, 3u);
  EXPECT_EQ(cache.stats().unmatched_scans, 3u);
}

TEST(FlowCache, RejectsZeroCapacityAndParsesSchemeNames) {
  EXPECT_THROW(FlowCache(test_spec(), FlowCacheScheme::kLru, 0),
               std::invalid_argument);
  EXPECT_EQ(code::flow_cache_scheme_from_string("one-behind"),
            FlowCacheScheme::kOneBehind);
  EXPECT_EQ(code::flow_cache_scheme_from_string("direct"),
            FlowCacheScheme::kDirectMapped);
  EXPECT_EQ(code::flow_cache_scheme_from_string("lru"),
            FlowCacheScheme::kLru);
  EXPECT_EQ(code::flow_cache_scheme_from_string("bogus"), std::nullopt);
  EXPECT_STREQ(code::to_string(FlowCacheScheme::kDirectMapped), "direct");
}

}  // namespace
}  // namespace l96
