// Tests for the recovery harness (harness/recovery.h): chaos-free byte-
// identity with the fleet engine, determinism across runs and worker
// counts, dark windows + finite time-to-recover under blackout and
// crash/reboot scripts, and the input validation guards.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "harness/fleet.h"
#include "harness/recovery.h"

namespace l96 {
namespace {

using harness::BurstCostTable;
using harness::RecoveryResult;
using harness::RecoveryRunner;
using harness::RecoverySpec;

const BurstCostTable& tcp_table() {
  static const BurstCostTable table = harness::measure_burst_costs(
      net::StackKind::kTcpIp, code::StackConfig::All(), 1);
  return table;
}

RecoverySpec small_spec() {
  RecoverySpec spec;
  spec.fleet.label = "test";
  spec.fleet.kind = net::StackKind::kTcpIp;
  spec.fleet.config = code::StackConfig::All();
  spec.fleet.connections = 4;
  spec.fleet.packets = 48;
  spec.fleet.zipf_s = 1.1;
  spec.fleet.seed = 5;
  spec.fleet.scheme = code::FlowCacheScheme::kLru;
  spec.fleet.cache_capacity = 8;
  return spec;
}

RecoverySpec crash_spec() {
  RecoverySpec spec = small_spec();
  spec.chaos = net::ChaosTimeline::parse(
      "crash@20000:server reboot@220000:server");
  spec.keepalive_idle_us = 50'000;
  spec.keepalive_intvl_us = 25'000;
  spec.keepalive_probes = 2;
  return spec;
}

TEST(RecoveryTest, ChaosFreeRunIsByteIdenticalToFleetEngine) {
  const RecoverySpec spec = small_spec();  // empty timeline, knobs off
  const harness::FleetResult fleet = harness::run_fleet(spec.fleet,
                                                        tcp_table());
  const RecoveryResult rec = harness::run_recovery(spec, tcp_table());
  EXPECT_EQ(rec.fleet.sample_digest, fleet.sample_digest);
  EXPECT_EQ(rec.fleet.packets_sampled, fleet.packets_sampled);
  EXPECT_EQ(rec.fleet.scheduled_sampled, fleet.scheduled_sampled);
  EXPECT_DOUBLE_EQ(rec.fleet.latency.p99, fleet.latency.p99);
  EXPECT_EQ(rec.lost_packets, 0u);
  EXPECT_EQ(rec.reconnects, 0u);
  EXPECT_TRUE(rec.windows.empty());
  EXPECT_EQ(rec.recovery_samples, 0u);
  EXPECT_EQ(rec.steady_samples, rec.fleet.packets_sampled);
}

TEST(RecoveryTest, BlackoutWindowIsDarkAndRecovers) {
  RecoverySpec spec = small_spec();
  spec.chaos = net::ChaosTimeline::parse("link_down@20000 link_up@120000");
  const RecoveryResult r = harness::run_recovery(spec, tcp_table());

  ASSERT_EQ(r.windows.size(), 1u);
  EXPECT_EQ(r.windows[0].samples_in_window, 0u);  // goodput zero in the dark
  EXPECT_TRUE(r.windows[0].recovered);
  EXPECT_GE(r.windows[0].ttr_us, 0.0);
  EXPECT_GT(r.blackout_drops, 0u);
  // Conservation: every scheduled packet was priced, dropped in churn, or
  // lost to the disruption.
  EXPECT_EQ(r.fleet.spec.packets, r.fleet.scheduled_sampled +
                                      r.fleet.dropped_in_churn +
                                      r.lost_packets);
  EXPECT_GT(r.recovery_samples, 0u);
  EXPECT_GT(r.steady_samples, 0u);
}

TEST(RecoveryTest, CrashRebootReconnectsAndPricesTheTail) {
  const RecoveryResult r = harness::run_recovery(crash_spec(), tcp_table());

  ASSERT_EQ(r.windows.size(), 1u);
  EXPECT_TRUE(r.windows[0].window.crash);
  EXPECT_EQ(r.windows[0].samples_in_window, 0u);  // a corpse delivers nothing
  EXPECT_TRUE(r.windows[0].recovered);
  EXPECT_GE(r.windows[0].ttr_us, 0.0);
  EXPECT_EQ(r.server_incarnation, 2u);
  EXPECT_GE(r.reconnects, 1u);
  EXPECT_GT(r.frames_to_dead + r.blackout_drops + r.rst_sent, 0u);
  EXPECT_EQ(r.fleet.spec.packets, r.fleet.scheduled_sampled +
                                      r.fleet.dropped_in_churn +
                                      r.lost_packets);
  // The flushed flow cache and the reconnect storm price real work into
  // the recovery phase.
  EXPECT_GT(r.recovery_samples, 0u);
  EXPECT_GT(r.recovery.p999, r.steady.p999);
}

TEST(RecoveryTest, DeterministicAcrossRunsAndWorkerCounts) {
  const std::vector<RecoverySpec> specs = {
      small_spec(),
      [] {
        RecoverySpec s = small_spec();
        s.chaos = net::ChaosTimeline::parse("link_down@20000 link_up@120000");
        return s;
      }(),
      crash_spec(),
  };
  RecoveryRunner serial(1);
  RecoveryRunner pooled(4);
  const auto a = serial.run(specs, tcp_table());
  const auto b = pooled.run(specs, tcp_table());
  const auto c = pooled.run(specs, tcp_table());
  ASSERT_EQ(a.size(), specs.size());
  ASSERT_EQ(b.size(), specs.size());
  const std::string dump_a = harness::recovery_json(tcp_table(), a).dump();
  EXPECT_EQ(dump_a, harness::recovery_json(tcp_table(), b).dump());
  EXPECT_EQ(dump_a, harness::recovery_json(tcp_table(), c).dump());
}

TEST(RecoveryTest, JsonSectionIsSchemaVersioned) {
  const RecoveryResult r = harness::run_recovery(small_spec(), tcp_table());
  const harness::Json j = harness::recovery_json(tcp_table(), {r});
  ASSERT_TRUE(j.is_object());
  const harness::Json* schema = j.find("schema");
  ASSERT_NE(schema, nullptr);
  ASSERT_NE(schema->as_string(), nullptr);
  EXPECT_EQ(*schema->as_string(), "l96.recovery.v1");
}

TEST(RecoveryTest, RejectsClientCrashAndRpc) {
  RecoverySpec client_crash = small_spec();
  client_crash.chaos = net::ChaosTimeline::parse(
      "crash@20000:client reboot@120000:client");
  EXPECT_THROW(harness::run_recovery(client_crash, tcp_table()),
               std::invalid_argument);

  RecoverySpec rpc = small_spec();
  rpc.fleet.kind = net::StackKind::kRpc;
  EXPECT_THROW(harness::run_recovery(rpc, tcp_table()),
               std::invalid_argument);
}

}  // namespace
}  // namespace l96
