// Tests for the SweepRunner subsystem: the trace-capture cache must capture
// each functional configuration exactly once, the worker pool must produce
// byte-identical numbers to the serial Experiment path in deterministic
// order, and the JSON metrics emission must be well-formed.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness/sweep.h"

namespace l96 {
namespace {

using code::StackConfig;
using harness::capture_key;
using harness::SweepJob;
using harness::SweepRunner;

std::vector<SweepJob> table8_jobs() {
  std::vector<SweepJob> jobs;
  for (const auto& cfg : harness::paper_configs()) {
    SweepJob j;
    j.kind = net::StackKind::kTcpIp;
    j.client = cfg;
    j.server = cfg;
    jobs.push_back(std::move(j));
  }
  return jobs;
}

TEST(SweepRunner, MatchesSerialPathExactly) {
  // The acceptance bar: a Table-8-style sweep through the runner produces
  // byte-identical cycle/CPI/mCPI numbers to the serial Experiment path.
  const auto jobs = table8_jobs();
  SweepRunner runner(2);
  const auto outcomes = runner.run(jobs);
  ASSERT_EQ(outcomes.size(), jobs.size());

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto serial =
        harness::run_config(jobs[i].kind, jobs[i].client, jobs[i].server);
    const auto& par = outcomes[i].result;
    SCOPED_TRACE(jobs[i].client.name);
    EXPECT_EQ(outcomes[i].label, jobs[i].client.name);
    EXPECT_EQ(par.client.instructions, serial.client.instructions);
    EXPECT_EQ(par.client.steady.cycles(), serial.client.steady.cycles());
    EXPECT_EQ(par.client.cold.icache.misses, serial.client.cold.icache.misses);
    EXPECT_EQ(par.client.steady.taken_branches,
              serial.client.steady.taken_branches);
    EXPECT_EQ(par.server.steady.cycles(), serial.server.steady.cycles());
    // Bit-exact doubles: same inputs, same arithmetic, no reordering.
    EXPECT_EQ(par.client.steady.cpi(), serial.client.steady.cpi());
    EXPECT_EQ(par.client.steady.mcpi(), serial.client.steady.mcpi());
    EXPECT_EQ(par.te_us, serial.te_us);
    EXPECT_EQ(par.te_adjusted, serial.te_adjusted);
  }
}

TEST(SweepRunner, CapturesEachFunctionalTraceOnce) {
  // STD/OUT/CLO/BAD share one functional trace; PIN/ALL (path_inlining)
  // share a second.  Six configs -> exactly two captures.
  SweepRunner runner(2);
  const auto outcomes = runner.run(table8_jobs());
  EXPECT_EQ(runner.captures_performed(), 2u);
  std::size_t reused = 0;
  for (const auto& o : outcomes) reused += o.trace_reused ? 1 : 0;
  EXPECT_EQ(reused, outcomes.size() - 2);
  // Re-running the same sweep hits the cache for every job.
  const auto again = runner.run(table8_jobs());
  EXPECT_EQ(runner.captures_performed(), 2u);
  for (const auto& o : again) EXPECT_TRUE(o.trace_reused);
}

TEST(SweepRunner, RunsOnMultipleWorkerThreads) {
  SweepRunner runner(2);
  ASSERT_GE(runner.thread_count(), 2u);
  runner.run(table8_jobs());
  // Six jobs across two workers; both must have picked up work.  (Even on a
  // single hardware core the pool spawns two OS threads.)
  EXPECT_GE(runner.workers_used(), 2u);
}

TEST(SweepRunner, CaptureKeyIgnoresLayoutOnlyFields) {
  const auto base = capture_key(net::StackKind::kTcpIp, StackConfig::Std(),
                                StackConfig::Std(), 64);
  EXPECT_EQ(capture_key(net::StackKind::kTcpIp, StackConfig::Out(),
                        StackConfig::Out(), 64),
            base);
  EXPECT_EQ(capture_key(net::StackKind::kTcpIp, StackConfig::Bad(),
                        StackConfig::Bad(), 64),
            base);
  // Functional fields DO key the cache.
  EXPECT_NE(capture_key(net::StackKind::kTcpIp, StackConfig::Pin(),
                        StackConfig::Pin(), 64),
            base);
  EXPECT_NE(capture_key(net::StackKind::kTcpIp, StackConfig::Original(),
                        StackConfig::Original(), 64),
            base);
  EXPECT_NE(capture_key(net::StackKind::kRpc, StackConfig::Std(),
                        StackConfig::Std(), 64),
            base);
  EXPECT_NE(capture_key(net::StackKind::kTcpIp, StackConfig::Std(),
                        StackConfig::Std(), 32),
            base);
}

TEST(SweepRunner, TeSamplesMatchSerialPath) {
  SweepJob j;
  j.kind = net::StackKind::kTcpIp;
  j.client = StackConfig::Std();
  j.server = StackConfig::Std();
  j.te_sample_count = 3;
  SweepRunner runner(2);
  const auto out = runner.run({j});
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].te_samples.size(), 3u);

  harness::Experiment e(net::StackKind::kTcpIp, StackConfig::Std(),
                        StackConfig::Std());
  const auto serial = e.te_samples(3);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out[0].te_samples[i], serial[i]) << i;
  }
}

TEST(SweepRunner, ShrunkWarmupIsAPartOfTheKeyAndStillRuns) {
  // MachineParams::warmup_roundtrips lets sweeps shrink warm-up
  // deliberately; a shorter warm-up is a distinct functional capture.
  SweepJob j;
  j.client = StackConfig::Std();
  j.server = StackConfig::Std();
  j.params.warmup_roundtrips = 16;
  SweepRunner runner(2);
  const auto out = runner.run({j});
  EXPECT_GT(out[0].result.client.instructions, 0u);
  EXPECT_EQ(runner.captures_performed(), 1u);
}

// --- JSON emission -----------------------------------------------------------

/// Minimal structural JSON validator: brace/bracket balance with correct
/// nesting and string/escape handling.  Catches the bugs a hand-rolled
/// writer can introduce without pulling in a JSON library.
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip escaped char
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

TEST(SweepJson, EmitsWellFormedMetrics) {
  SweepJob j;
  j.label = "STD \"quoted\" label";  // exercise escaping
  j.client = StackConfig::Std();
  j.server = StackConfig::Std();
  SweepRunner runner(2);
  const auto outcomes = runner.run({j});

  std::ostringstream ss;
  harness::write_sweep_json(ss, "unit_test_bench", runner, {j}, outcomes);
  const std::string json = ss.str();

  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"schema\":\"l96.sweep.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"bench\":\"unit_test_bench\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  for (const char* key :
       {"\"cycles\":", "\"cpi\":", "\"icpi\":", "\"mcpi\":", "\"icache\":",
        "\"dcache\":", "\"bcache\":", "\"misses\":", "\"repl_misses\":",
        "\"wall_ms\":", "\"capture\":", "\"measure\":", "\"te_us\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(SweepJson, WritesMetricsFile) {
  SweepJob j;
  j.client = StackConfig::Std();
  j.server = StackConfig::Std();
  SweepRunner runner(2);
  const auto outcomes = runner.run({j});

  const std::string dir = ::testing::TempDir() + "/l96_sweep_out";
  const std::string path =
      harness::write_sweep_metrics("test_bench", runner, {j}, outcomes, dir);
  EXPECT_EQ(path, dir + "/test_bench.json");

  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream buf;
  buf << f.rdbuf();
  EXPECT_TRUE(json_well_formed(buf.str()));
  EXPECT_NE(buf.str().find("\"bench\":\"test_bench\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Capture, ErrorsNameStackAndConfigs) {
  // An impossible warm-up target must fail with a descriptive message
  // naming the stack kind, config names, and achieved-vs-requested counts.
  net::World world(net::StackKind::kTcpIp, StackConfig::Std(),
                   StackConfig::Std());
  world.start(2);  // client stops ping-ponging after 2 roundtrips
  try {
    harness::capture_traces(world, 500);
    FAIL() << "expected capture to throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("TCP/IP"), std::string::npos) << msg;
    EXPECT_NE(msg.find("client=STD"), std::string::npos) << msg;
    EXPECT_NE(msg.find("server=STD"), std::string::npos) << msg;
    EXPECT_NE(msg.find("of 500 requested"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace l96
