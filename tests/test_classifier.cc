// Tests for the packet classifier and the wire-format helpers.
#include <gtest/gtest.h>

#include "code/classifier.h"
#include "protocols/wire_format.h"

namespace l96 {
namespace {

using code::ClassifierRule;
using code::PacketClassifier;

std::vector<std::uint8_t> frame(std::initializer_list<int> xs) {
  std::vector<std::uint8_t> v;
  for (int x : xs) v.push_back(static_cast<std::uint8_t>(x));
  return v;
}

TEST(Classifier, MatchesSingleRule) {
  PacketClassifier c;
  c.add_path("ip", 1, {{.offset = 0, .size = 1, .mask = 0xFF, .value = 0x45}});
  EXPECT_EQ(c.classify(frame({0x45, 0x00})), 1);
  EXPECT_EQ(c.classify(frame({0x46, 0x00})), std::nullopt);
}

TEST(Classifier, MultiByteBigEndian) {
  PacketClassifier c;
  c.add_path("tcp80", 2,
             {{.offset = 2, .size = 2, .mask = 0xFFFF, .value = 0x0050}});
  EXPECT_EQ(c.classify(frame({0, 0, 0x00, 0x50})), 2);
  EXPECT_EQ(c.classify(frame({0, 0, 0x50, 0x00})), std::nullopt);
}

TEST(Classifier, MaskedMatch) {
  PacketClassifier c;
  c.add_path("highnibble", 3,
             {{.offset = 0, .size = 1, .mask = 0xF0, .value = 0x40}});
  EXPECT_EQ(c.classify(frame({0x4F})), 3);
  EXPECT_EQ(c.classify(frame({0x5F})), std::nullopt);
}

TEST(Classifier, AllRulesMustMatch) {
  PacketClassifier c;
  c.add_path("both", 4,
             {{.offset = 0, .size = 1, .mask = 0xFF, .value = 1},
              {.offset = 1, .size = 1, .mask = 0xFF, .value = 2}});
  EXPECT_EQ(c.classify(frame({1, 2})), 4);
  EXPECT_EQ(c.classify(frame({1, 3})), std::nullopt);
}

TEST(Classifier, FirstRegisteredWins) {
  PacketClassifier c;
  c.add_path("specific", 1,
             {{.offset = 0, .size = 1, .mask = 0xFF, .value = 7}});
  c.add_path("general", 2, {});
  EXPECT_EQ(c.classify(frame({7})), 1);
  EXPECT_EQ(c.classify(frame({9})), 2);  // catch-all
}

TEST(Classifier, ShortFrameNeverMatchesOutOfRangeRule) {
  PacketClassifier c;
  c.add_path("deep", 1,
             {{.offset = 100, .size = 2, .mask = 0xFFFF, .value = 0}});
  EXPECT_EQ(c.classify(frame({1, 2, 3})), std::nullopt);
}

TEST(Classifier, Metadata) {
  PacketClassifier c;
  c.add_path("x", 9, {});
  ASSERT_NE(c.path_name(9), nullptr);
  EXPECT_EQ(*c.path_name(9), "x");
  EXPECT_EQ(c.path_name(1), nullptr);
  c.set_overhead_us(2.5);
  EXPECT_DOUBLE_EQ(c.overhead_us(), 2.5);
  EXPECT_EQ(c.num_paths(), 1u);
}

TEST(Classifier, RejectsRuleSizesOutsideAccumulatorWidth) {
  // The matcher folds `size` big-endian bytes into a 32-bit accumulator;
  // anything outside {1, 2, 4} would overflow or read torn values, so
  // add_path must reject it up front.
  PacketClassifier c;
  EXPECT_THROW(c.add_path("zero", 1,
                          {{.offset = 0, .size = 0, .mask = 0xFF, .value = 0}}),
               std::invalid_argument);
  EXPECT_THROW(c.add_path("three", 2,
                          {{.offset = 0, .size = 3, .mask = 0xFF, .value = 0}}),
               std::invalid_argument);
  EXPECT_THROW(c.add_path("eight", 3,
                          {{.offset = 0, .size = 8, .mask = 0xFF, .value = 0}}),
               std::invalid_argument);
  EXPECT_EQ(c.num_paths(), 0u);  // nothing was registered
  for (std::uint8_t ok : {1, 2, 4}) {
    PacketClassifier good;
    EXPECT_NO_THROW(good.add_path(
        "ok", ok, {{.offset = 0, .size = ok, .mask = 0xFF, .value = 0}}));
  }
}

TEST(Classifier, RejectsDuplicatePathIds) {
  PacketClassifier c;
  c.add_path("first", 7, {{.offset = 0, .size = 1, .mask = 0xFF, .value = 1}});
  EXPECT_THROW(
      c.add_path("second", 7,
                 {{.offset = 0, .size = 1, .mask = 0xFF, .value = 2}}),
      std::invalid_argument);
  EXPECT_EQ(c.num_paths(), 1u);
  ASSERT_NE(c.path_name(7), nullptr);
  EXPECT_EQ(*c.path_name(7), "first");  // original registration intact
}

TEST(Classifier, ClassifyScanCountsRulesExamined) {
  PacketClassifier c;
  c.add_path("a", 1,
             {{.offset = 0, .size = 1, .mask = 0xFF, .value = 1},
              {.offset = 1, .size = 1, .mask = 0xFF, .value = 2}});
  c.add_path("b", 2, {{.offset = 0, .size = 1, .mask = 0xFF, .value = 9}});

  // Match on the first path: both of its rules were evaluated.
  auto scan = c.classify_scan(frame({1, 2}));
  EXPECT_EQ(scan.path_id, 1);
  EXPECT_EQ(scan.rules_examined, 2u);

  // First path fails on rule 1 (short-circuit), second matches its rule.
  scan = c.classify_scan(frame({9, 9}));
  EXPECT_EQ(scan.path_id, 2);
  EXPECT_EQ(scan.rules_examined, 2u);

  // No match: every path's scan was attempted.
  scan = c.classify_scan(frame({5, 5}));
  EXPECT_EQ(scan.path_id, std::nullopt);
  EXPECT_EQ(scan.rules_examined, 2u);  // path a stops at rule 1, then path b
}

// --- wire format -----------------------------------------------------------

TEST(WireFormat, BigEndianRoundtrip) {
  std::vector<std::uint8_t> buf(8);
  proto::put_be16(buf, 0, 0xBEEF);
  proto::put_be32(buf, 2, 0xDEADC0DE);
  EXPECT_EQ(proto::get_be16(buf, 0), 0xBEEF);
  EXPECT_EQ(proto::get_be32(buf, 2), 0xDEADC0DEu);
  EXPECT_EQ(buf[0], 0xBE);
  EXPECT_EQ(buf[1], 0xEF);
}

TEST(WireFormat, ChecksumKnownVector) {
  // RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2, cksum ~0xddf2.
  auto data = frame({0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7});
  EXPECT_EQ(proto::inet_checksum(data), static_cast<std::uint16_t>(~0xddf2));
}

TEST(WireFormat, ChecksumOfDataWithItsChecksumIsZero) {
  auto data = frame({1, 2, 3, 4, 5, 6});
  const std::uint16_t ck = proto::inet_checksum(data);
  data.push_back(static_cast<std::uint8_t>(ck >> 8));
  data.push_back(static_cast<std::uint8_t>(ck));
  EXPECT_EQ(proto::inet_checksum(data), 0);
}

TEST(WireFormat, ChecksumDetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(40);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 37);
  }
  const std::uint16_t ck = proto::inet_checksum(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] ^= (1u << bit);
      EXPECT_NE(proto::inet_checksum(data), ck);
      data[i] ^= (1u << bit);
    }
  }
}

TEST(WireFormat, ChecksumOddLength) {
  auto data = frame({0xAB});
  // Odd byte is padded with zero on the right: sum = 0xab00.
  EXPECT_EQ(proto::inet_checksum(data), static_cast<std::uint16_t>(~0xab00));
}

TEST(WireFormat, AccumulatePartial) {
  auto a = frame({0x12, 0x34});
  auto b = frame({0x56, 0x78});
  const std::uint32_t partial = proto::checksum_accumulate(a);
  const std::uint16_t split = proto::inet_checksum(b, partial);
  auto whole = frame({0x12, 0x34, 0x56, 0x78});
  EXPECT_EQ(split, proto::inet_checksum(whole));
}

}  // namespace
}  // namespace l96
