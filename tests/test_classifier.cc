// Tests for the packet classifier and the wire-format helpers.
#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "code/classifier.h"
#include "harness/classify.h"
#include "protocols/rulegen.h"
#include "protocols/wire_format.h"

namespace l96 {
namespace {

using code::ClassifierRule;
using code::PacketClassifier;

std::vector<std::uint8_t> frame(std::initializer_list<int> xs) {
  std::vector<std::uint8_t> v;
  for (int x : xs) v.push_back(static_cast<std::uint8_t>(x));
  return v;
}

TEST(Classifier, MatchesSingleRule) {
  PacketClassifier c;
  c.add_path("ip", 1, {{.offset = 0, .size = 1, .mask = 0xFF, .value = 0x45}});
  EXPECT_EQ(c.classify(frame({0x45, 0x00})), 1);
  EXPECT_EQ(c.classify(frame({0x46, 0x00})), std::nullopt);
}

TEST(Classifier, MultiByteBigEndian) {
  PacketClassifier c;
  c.add_path("tcp80", 2,
             {{.offset = 2, .size = 2, .mask = 0xFFFF, .value = 0x0050}});
  EXPECT_EQ(c.classify(frame({0, 0, 0x00, 0x50})), 2);
  EXPECT_EQ(c.classify(frame({0, 0, 0x50, 0x00})), std::nullopt);
}

TEST(Classifier, MaskedMatch) {
  PacketClassifier c;
  c.add_path("highnibble", 3,
             {{.offset = 0, .size = 1, .mask = 0xF0, .value = 0x40}});
  EXPECT_EQ(c.classify(frame({0x4F})), 3);
  EXPECT_EQ(c.classify(frame({0x5F})), std::nullopt);
}

TEST(Classifier, AllRulesMustMatch) {
  PacketClassifier c;
  c.add_path("both", 4,
             {{.offset = 0, .size = 1, .mask = 0xFF, .value = 1},
              {.offset = 1, .size = 1, .mask = 0xFF, .value = 2}});
  EXPECT_EQ(c.classify(frame({1, 2})), 4);
  EXPECT_EQ(c.classify(frame({1, 3})), std::nullopt);
}

TEST(Classifier, FirstRegisteredWins) {
  PacketClassifier c;
  c.add_path("specific", 1,
             {{.offset = 0, .size = 1, .mask = 0xFF, .value = 7}});
  c.add_path("general", 2, {});
  EXPECT_EQ(c.classify(frame({7})), 1);
  EXPECT_EQ(c.classify(frame({9})), 2);  // catch-all
}

TEST(Classifier, ShortFrameNeverMatchesOutOfRangeRule) {
  PacketClassifier c;
  c.add_path("deep", 1,
             {{.offset = 100, .size = 2, .mask = 0xFFFF, .value = 0}});
  EXPECT_EQ(c.classify(frame({1, 2, 3})), std::nullopt);
}

TEST(Classifier, Metadata) {
  PacketClassifier c;
  c.add_path("x", 9, {});
  ASSERT_NE(c.path_name(9), nullptr);
  EXPECT_EQ(*c.path_name(9), "x");
  EXPECT_EQ(c.path_name(1), nullptr);
  c.set_overhead_us(2.5);
  EXPECT_DOUBLE_EQ(c.overhead_us(), 2.5);
  EXPECT_EQ(c.num_paths(), 1u);
}

TEST(Classifier, RejectsRuleSizesOutsideAccumulatorWidth) {
  // The matcher folds `size` big-endian bytes into a 32-bit accumulator;
  // anything outside {1, 2, 4} would overflow or read torn values, so
  // add_path must reject it up front.
  PacketClassifier c;
  EXPECT_THROW(c.add_path("zero", 1,
                          {{.offset = 0, .size = 0, .mask = 0xFF, .value = 0}}),
               std::invalid_argument);
  EXPECT_THROW(c.add_path("three", 2,
                          {{.offset = 0, .size = 3, .mask = 0xFF, .value = 0}}),
               std::invalid_argument);
  EXPECT_THROW(c.add_path("eight", 3,
                          {{.offset = 0, .size = 8, .mask = 0xFF, .value = 0}}),
               std::invalid_argument);
  EXPECT_EQ(c.num_paths(), 0u);  // nothing was registered
  for (std::uint8_t ok : {1, 2, 4}) {
    PacketClassifier good;
    EXPECT_NO_THROW(good.add_path(
        "ok", ok, {{.offset = 0, .size = ok, .mask = 0xFF, .value = 0}}));
  }
}

TEST(Classifier, RejectsDuplicatePathIds) {
  PacketClassifier c;
  c.add_path("first", 7, {{.offset = 0, .size = 1, .mask = 0xFF, .value = 1}});
  EXPECT_THROW(
      c.add_path("second", 7,
                 {{.offset = 0, .size = 1, .mask = 0xFF, .value = 2}}),
      std::invalid_argument);
  EXPECT_EQ(c.num_paths(), 1u);
  ASSERT_NE(c.path_name(7), nullptr);
  EXPECT_EQ(*c.path_name(7), "first");  // original registration intact
}

TEST(Classifier, ClassifyScanCountsRulesExamined) {
  PacketClassifier c;
  c.add_path("a", 1,
             {{.offset = 0, .size = 1, .mask = 0xFF, .value = 1},
              {.offset = 1, .size = 1, .mask = 0xFF, .value = 2}});
  c.add_path("b", 2, {{.offset = 0, .size = 1, .mask = 0xFF, .value = 9}});

  // Match on the first path: both of its rules were evaluated.
  auto scan = c.classify_scan(frame({1, 2}));
  EXPECT_EQ(scan.path_id, 1);
  EXPECT_EQ(scan.rules_examined, 2u);

  // First path fails on rule 1 (short-circuit), second matches its rule.
  scan = c.classify_scan(frame({9, 9}));
  EXPECT_EQ(scan.path_id, 2);
  EXPECT_EQ(scan.rules_examined, 2u);

  // No match: every path's scan was attempted.
  scan = c.classify_scan(frame({5, 5}));
  EXPECT_EQ(scan.path_id, std::nullopt);
  EXPECT_EQ(scan.rules_examined, 2u);  // path a stops at rule 1, then path b
}

// --- tuple-space engine -----------------------------------------------------

TEST(ClassifierTuple, AutoPolicySelectsByScaleAndShape) {
  // Small sets stay linear even though a tuple index exists.
  PacketClassifier small;
  small.add_path("a", 1, {{.offset = 0, .size = 1, .mask = 0xFF, .value = 1}});
  EXPECT_FALSE(small.tuple_active());
  small.set_engine(PacketClassifier::Engine::kTuple);
  EXPECT_TRUE(small.tuple_active());
  small.set_engine(PacketClassifier::Engine::kLinear);
  EXPECT_FALSE(small.tuple_active());

  // A large set sharing one signature goes tuple under kAuto...
  PacketClassifier shared;
  for (int i = 0; i < 32; ++i) {
    shared.add_path("p" + std::to_string(i), i,
                    {{.offset = 0, .size = 1, .mask = 0xFF,
                      .value = static_cast<std::uint32_t>(i)}});
  }
  EXPECT_EQ(shared.num_tuples(), 1u);
  EXPECT_TRUE(shared.tuple_active());

  // ...but a degenerate set (every path its own signature) stays linear:
  // probing one single-entry table per path IS a linear scan, with extra
  // hashing on top.
  PacketClassifier degen;
  for (int i = 0; i < 32; ++i) {
    degen.add_path("p" + std::to_string(i), i,
                   {{.offset = static_cast<std::uint16_t>(i), .size = 1,
                     .mask = 0xFF, .value = 7}});
  }
  EXPECT_EQ(degen.num_tuples(), 32u);
  EXPECT_FALSE(degen.tuple_active());
}

TEST(ClassifierTuple, ReproducesLinearDecisionAndPriority) {
  // Overlapping masks across two signatures; the earliest registered match
  // must win under both engines, including when a later path also fully
  // matches (shadowed priority).
  PacketClassifier c;
  c.add_path("exact", 1,
             {{.offset = 0, .size = 1, .mask = 0xFF, .value = 0x42}});
  c.add_path("highnibble", 2,
             {{.offset = 0, .size = 1, .mask = 0xF0, .value = 0x40}});
  c.add_path("other", 3,
             {{.offset = 1, .size = 1, .mask = 0xFF, .value = 0x01}});

  const auto frames = {frame({0x42, 0x01}), frame({0x41, 0x01}),
                       frame({0x99, 0x01}), frame({0x99, 0x02}),
                       frame({0x42})};
  for (const auto& f : frames) {
    const auto lin = c.classify_scan_linear(f);
    const auto tup = c.classify_scan_tuple(f);
    EXPECT_EQ(lin.path_id, tup.path_id);
    EXPECT_TRUE(tup.tuple_engine);
    EXPECT_FALSE(lin.tuple_engine);
  }
  EXPECT_EQ(c.classify_scan_tuple(frame({0x42, 0x01})).path_id, 1);
  EXPECT_EQ(c.classify_scan_tuple(frame({0x41, 0x01})).path_id, 2);
}

TEST(ClassifierTuple, ProbeLogDescribesTheScan) {
  const code::PacketClassifier c = proto::build_scaled_classifier(
      proto::RuleSetKind::kTcpIp, 64, /*seed=*/1);
  ASSERT_TRUE(c.tuple_active());
  const auto f = harness::classifier_match_frame(net::StackKind::kTcpIp);
  code::ClassifyProbeLog log;
  const auto scan = c.classify_scan(f, &log);
  EXPECT_EQ(scan.path_id, proto::real_path_id(proto::RuleSetKind::kTcpIp));
  EXPECT_EQ(log.probes.size(), scan.tuples_probed);
  std::size_t candidates = 0, rules = 0, matched = 0;
  for (const auto& p : log.probes) {
    candidates += p.candidates;
    rules += p.rules;
    matched += p.matched ? 1 : 0;
  }
  EXPECT_EQ(candidates, scan.candidates_verified);
  EXPECT_EQ(rules, scan.rules_examined);
  EXPECT_EQ(matched, 1u);
}

TEST(ClassifierTuple, ScaledRuleSetKeepsTupleCountFlat) {
  // Thousands of generated paths share the template families, so the
  // tuple-space probe count stays O(#families) while the linear scan's
  // work grows with the path count.
  const code::PacketClassifier c = proto::build_scaled_classifier(
      proto::RuleSetKind::kTcpIp, 2048, /*seed=*/1);
  EXPECT_EQ(c.num_paths(), 2049u);
  EXPECT_LE(c.num_tuples(), 4u);
  ASSERT_TRUE(c.tuple_active());
  const auto f = harness::classifier_match_frame(net::StackKind::kTcpIp);
  const auto tup = c.classify_scan_tuple(f);
  const auto lin = c.classify_scan_linear(f);
  EXPECT_EQ(tup.path_id, lin.path_id);
  EXPECT_LE(tup.tuples_probed, c.num_tuples());
  EXPECT_LT(tup.rules_examined, lin.rules_examined / 100);
}

TEST(ClassifierScale, TenThousandPathRegistrationStaysLinear) {
  // Registering N paths must be O(total rules): the duplicate-id check is
  // an O(1) map lookup, not a scan of every prior path.  A quadratic
  // regression at 10k paths would blow far past this (generous) budget.
  const auto t0 = std::chrono::steady_clock::now();
  const code::PacketClassifier c = proto::build_scaled_classifier(
      proto::RuleSetKind::kTcpIp, 10'000, /*seed=*/7);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(c.num_paths(), 10'001u);
  EXPECT_LT(secs, 2.0);

  // path_name is an O(1) lookup at any scale, and duplicate ids still
  // throw with the original registration intact.
  const std::string* name = c.path_name(proto::kDecoyPathIdBase + 9'999);
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(*name, "decoy_9999");
  ASSERT_NE(c.path_name(1), nullptr);
  EXPECT_EQ(*c.path_name(1), "tcpip_in");
  code::PacketClassifier mut = c;
  EXPECT_THROW(mut.add_path("dup", proto::kDecoyPathIdBase, {}),
               std::invalid_argument);
  EXPECT_EQ(mut.num_paths(), 10'001u);

  // The classification itself still lands on the real fast path.
  EXPECT_EQ(c.classify(harness::classifier_match_frame(net::StackKind::kTcpIp)),
            1);
  EXPECT_EQ(c.classify(harness::classifier_nomatch_frame()), std::nullopt);
}

// --- wire format -----------------------------------------------------------

TEST(WireFormat, BigEndianRoundtrip) {
  std::vector<std::uint8_t> buf(8);
  proto::put_be16(buf, 0, 0xBEEF);
  proto::put_be32(buf, 2, 0xDEADC0DE);
  EXPECT_EQ(proto::get_be16(buf, 0), 0xBEEF);
  EXPECT_EQ(proto::get_be32(buf, 2), 0xDEADC0DEu);
  EXPECT_EQ(buf[0], 0xBE);
  EXPECT_EQ(buf[1], 0xEF);
}

TEST(WireFormat, ChecksumKnownVector) {
  // RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2, cksum ~0xddf2.
  auto data = frame({0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7});
  EXPECT_EQ(proto::inet_checksum(data), static_cast<std::uint16_t>(~0xddf2));
}

TEST(WireFormat, ChecksumOfDataWithItsChecksumIsZero) {
  auto data = frame({1, 2, 3, 4, 5, 6});
  const std::uint16_t ck = proto::inet_checksum(data);
  data.push_back(static_cast<std::uint8_t>(ck >> 8));
  data.push_back(static_cast<std::uint8_t>(ck));
  EXPECT_EQ(proto::inet_checksum(data), 0);
}

TEST(WireFormat, ChecksumDetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(40);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 37);
  }
  const std::uint16_t ck = proto::inet_checksum(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] ^= (1u << bit);
      EXPECT_NE(proto::inet_checksum(data), ck);
      data[i] ^= (1u << bit);
    }
  }
}

TEST(WireFormat, ChecksumOddLength) {
  auto data = frame({0xAB});
  // Odd byte is padded with zero on the right: sum = 0xab00.
  EXPECT_EQ(proto::inet_checksum(data), static_cast<std::uint16_t>(~0xab00));
}

TEST(WireFormat, AccumulatePartial) {
  auto a = frame({0x12, 0x34});
  auto b = frame({0x56, 0x78});
  const std::uint32_t partial = proto::checksum_accumulate(a);
  const std::uint16_t split = proto::inet_checksum(b, partial);
  auto whole = frame({0x12, 0x34, 0x56, 0x78});
  EXPECT_EQ(split, proto::inet_checksum(whole));
}

}  // namespace
}  // namespace l96
