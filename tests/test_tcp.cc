// TCP functional tests: handshake, reliable delivery under loss and
// corruption, close sequences, window/congestion behaviour.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "net/world.h"

namespace l96 {
namespace {

class TcpWorld : public ::testing::Test {
 protected:
  TcpWorld()
      : world(net::StackKind::kTcpIp, code::StackConfig::Std(),
              code::StackConfig::Std()) {}

  proto::TcpConn* client_conn() { return world.client().tcptest()->connection(); }
  proto::Tcp& ctcp() { return *world.client().tcp(); }
  proto::Tcp& stcp() { return *world.server().tcp(); }

  net::World world;
};

TEST_F(TcpWorld, HandshakeEstablishesBothSides) {
  world.start(1);
  ASSERT_TRUE(world.run_until(
      [&] {
        return client_conn() != nullptr &&
               client_conn()->state() == proto::TcpState::kEstablished;
      },
      5'000'000));
  EXPECT_EQ(ctcp().open_connections(), 1u);
  EXPECT_EQ(stcp().open_connections(), 1u);
}

TEST_F(TcpWorld, PingPongCompletesRoundtrips) {
  world.start(25);
  ASSERT_TRUE(world.run_until_roundtrips(25));
  EXPECT_EQ(world.client().tcptest()->roundtrips(), 25u);
  EXPECT_EQ(client_conn()->retransmits(), 0u);  // clean network
}

TEST_F(TcpWorld, SynLossRecoveredByRetransmission) {
  world.wire().drop_next(1);  // the SYN
  world.start(3);
  ASSERT_TRUE(world.run_until_roundtrips(3, 30'000'000));
  EXPECT_GT(client_conn()->retransmits(), 0u);
}

TEST_F(TcpWorld, DataLossRecoveredExactlyOnce) {
  world.start(1000);
  ASSERT_TRUE(world.run_until_roundtrips(5));
  world.wire().drop_next(1);  // next data segment vanishes
  ASSERT_TRUE(world.run_until_roundtrips(20, 60'000'000));
  // Roundtrip count is exact: no duplicate delivery inflated it.
  EXPECT_EQ(world.client().tcptest()->roundtrips(), 20u);
  EXPECT_GT(client_conn()->retransmits(), 0u);
}

TEST_F(TcpWorld, CorruptionDetectedByChecksum) {
  world.start(1000);
  ASSERT_TRUE(world.run_until_roundtrips(5));
  const auto bad_before =
      ctcp().bad_checksum_drops() + stcp().bad_checksum_drops() +
      world.client().ip()->bad_checksum_drops() +
      world.server().ip()->bad_checksum_drops();
  world.wire().corrupt_next(1);
  ASSERT_TRUE(world.run_until_roundtrips(15, 60'000'000));
  EXPECT_GT(ctcp().bad_checksum_drops() + stcp().bad_checksum_drops() +
                world.client().ip()->bad_checksum_drops() +
                world.server().ip()->bad_checksum_drops(),
            bad_before);
  EXPECT_EQ(world.client().tcptest()->roundtrips(), 15u);
}

TEST_F(TcpWorld, RepeatedLossStillConverges) {
  world.start(1000);
  ASSERT_TRUE(world.run_until_roundtrips(2));
  for (int i = 0; i < 5; ++i) {
    world.wire().drop_next(1);
    ASSERT_TRUE(world.run_until_roundtrips(2 + 2 * (i + 1), 120'000'000));
  }
  EXPECT_GE(client_conn()->retransmits(), 1u);
}

TEST_F(TcpWorld, CongestionWindowOpensWithTraffic) {
  world.start(1000);
  ASSERT_TRUE(world.run_until_roundtrips(2));
  const auto cwnd_early = client_conn()->cwnd();
  ASSERT_TRUE(world.run_until_roundtrips(40));
  EXPECT_GT(client_conn()->cwnd(), cwnd_early);
}

TEST_F(TcpWorld, TimeoutCollapsesCongestionWindow) {
  world.start(1000);
  ASSERT_TRUE(world.run_until_roundtrips(30));
  const auto cwnd_before = client_conn()->cwnd();
  world.wire().drop_next(2);  // segment + its first retransmission
  ASSERT_TRUE(world.run_until_roundtrips(40, 120'000'000));
  EXPECT_GT(cwnd_before, world.client().tcp()->params().mss);
  // After loss, cwnd restarted from one segment and is still recovering.
  EXPECT_LE(client_conn()->cwnd(), cwnd_before);
}

TEST_F(TcpWorld, CloseHandshakeReachesClosedStates) {
  world.start(5);
  ASSERT_TRUE(world.run_until_roundtrips(5));
  auto* conn = client_conn();
  conn->close();
  world.run_until([&] { return conn->state() == proto::TcpState::kFinWait2 ||
                               conn->state() == proto::TcpState::kTimeWait; },
                  10'000'000);
  EXPECT_TRUE(conn->state() == proto::TcpState::kFinWait2 ||
              conn->state() == proto::TcpState::kTimeWait);
}

TEST_F(TcpWorld, RstSentForUnknownPort) {
  world.start(2);
  ASSERT_TRUE(world.run_until_roundtrips(2));
  const auto rst_before = stcp().rst_sent();
  // A fresh client connection to a port nobody listens on.
  world.client().tcptest()->start(world.server().address().ip, 6000, 7777, 1);
  world.events().advance_by(1'000'000);
  EXPECT_GT(stcp().rst_sent(), rst_before);
}

TEST_F(TcpWorld, DemuxMapUsesOneEntryCache) {
  world.start(30);
  ASSERT_TRUE(world.run_until_roundtrips(30));
  const auto& stats = ctcp().connection_map().stats();
  EXPECT_GT(stats.cache_hits, 20u);  // packet-train locality
}

TEST_F(TcpWorld, OpenConnectionsViaMapTraversal) {
  world.start(2);
  ASSERT_TRUE(world.run_until_roundtrips(2));
  EXPECT_EQ(ctcp().open_connections(), 1u);
  // Traversal walks the non-empty bucket list, not all 64 buckets.
  const auto& stats = ctcp().connection_map().stats();
  EXPECT_GT(stats.traversals, 0u);
  EXPECT_LT(stats.buckets_walked, 10u * stats.traversals);
}

TEST_F(TcpWorld, HeaderPredictionCostsOnBidirectional) {
  // With header prediction enabled the trace grows slightly (the predictor
  // runs and fails on bi-directional traffic) — Section 2.3.
  auto hp = code::StackConfig::Std();
  hp.header_prediction = true;
  harness::Experiment e1(net::StackKind::kTcpIp, code::StackConfig::Std(),
                         code::StackConfig::Std());
  harness::Experiment e2(net::StackKind::kTcpIp, hp, hp);
  auto r1 = e1.run();
  auto r2 = e2.run();
  EXPECT_GT(r2.client.instructions, r1.client.instructions);
  EXPECT_LT(r2.client.instructions, r1.client.instructions + 40);
}

TEST_F(TcpWorld, WindowUpdateThresholdBothModes) {
  // The 33% shift/add threshold approximates the 35% mul/div one: both
  // worlds complete the same ping-pong without behavioural divergence.
  auto nodiv = code::StackConfig::Std();
  ASSERT_TRUE(nodiv.avoid_int_division);
  auto withdiv = code::StackConfig::Std();
  withdiv.avoid_int_division = false;
  net::World w1(net::StackKind::kTcpIp, nodiv, nodiv);
  net::World w2(net::StackKind::kTcpIp, withdiv, withdiv);
  w1.start(20);
  w2.start(20);
  ASSERT_TRUE(w1.run_until_roundtrips(20));
  ASSERT_TRUE(w2.run_until_roundtrips(20));
  EXPECT_EQ(w1.client_roundtrips(), w2.client_roundtrips());
  // Threshold values are within a few percent of each other:
  // (w>>2)+(w>>4) = 31.25% vs 35%.
  const std::uint32_t w = 8192;
  const std::uint32_t approx = (w >> 2) + (w >> 4);
  const std::uint32_t exact = w * 35 / 100;
  EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
              0.12 * exact);
}

TEST_F(TcpWorld, RetransmitBackoffFollowsExponentialSchedule) {
  // Pin the retransmission backoff schedule in virtual time: with the
  // default TcpParams (rto 200ms, cap 3.2s) an unanswered segment must
  // retransmit at exactly 200/400/800/1600/3200/3200 ms intervals —
  // doubling per timeout, clamped at max_rto_us.
  world.start(1000);
  ASSERT_TRUE(world.run_until_roundtrips(3));
  ASSERT_TRUE(world.run_until(
      [&] { return client_conn()->bytes_unacked() == 0; }, 5'000'000));
  world.run_until([] { return false; }, 100'000);  // drain stray ACKs

  world.server().crash();  // every segment now goes unanswered

  proto::TcpConn* c = client_conn();
  const std::uint64_t base = c->retransmits();
  const std::uint8_t payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::uint64_t t0 = world.events().now();
  c->send(payload);

  const std::uint64_t expected_deltas[] = {200'000,   400'000,   800'000,
                                           1'600'000, 3'200'000, 3'200'000};
  std::uint64_t prev = t0;
  std::uint64_t k = 0;
  for (const std::uint64_t want : expected_deltas) {
    ++k;
    ASSERT_TRUE(world.run_until(
        [c, base, k] { return c->retransmits() >= base + k; }, 10'000'000));
    EXPECT_EQ(world.events().now() - prev, want) << "retransmission " << k;
    prev = world.events().now();
  }
  EXPECT_EQ(c->state(), proto::TcpState::kEstablished);
}

namespace closewait {

class Sink final : public proto::TcpUpper {
 public:
  void tcp_receive(proto::TcpConn&, xk::Message& m) override {
    bytes += m.length();
  }
  std::uint64_t bytes = 0;
};

}  // namespace closewait

TEST_F(TcpWorld, CloseWaitStillFlushesBufferedData) {
  // A half-closed connection owns its send stream: after the peer's FIN
  // puts us in kCloseWait, send() must still transmit (the old output()
  // gate only flushed data in kEstablished, deadlocking this case — the
  // FIN path waits for all_data_sent, which never came).
  world.start(1);
  closewait::Sink client_sink;
  closewait::Sink server_sink;
  world.server().tcp()->listen(9000, &server_sink);
  proto::TcpConn* cc = world.client().tcp()->connect(
      world.server().address().ip, 12'000, 9000, &client_sink);
  ASSERT_TRUE(world.run_until(
      [cc] { return cc->state() == proto::TcpState::kEstablished; },
      5'000'000));

  // Server closes first: client lands in kCloseWait, server in kFinWait2.
  proto::TcpConn* sc = nullptr;
  for (auto* c : stcp().connections()) {
    if (c->remote_port() == 12'000) sc = c;
  }
  ASSERT_NE(sc, nullptr);
  // The client observes kEstablished one half-RTT before the server does;
  // close() from kSynRcvd would be a no-op.
  ASSERT_TRUE(world.run_until(
      [sc] { return sc->state() == proto::TcpState::kEstablished; },
      5'000'000));
  sc->close();
  ASSERT_TRUE(world.run_until(
      [cc] { return cc->state() == proto::TcpState::kCloseWait; },
      5'000'000));

  // The half-open direction still delivers.
  const std::uint8_t payload[16] = {};
  cc->send(payload);
  ASSERT_TRUE(world.run_until(
      [&server_sink] { return server_sink.bytes >= 16; }, 5'000'000));

  // And the orderly close completes from kCloseWait through kLastAck.
  cc->close();
  ASSERT_TRUE(world.run_until(
      [cc] { return cc->state() == proto::TcpState::kClosed; }, 5'000'000));
}

}  // namespace
}  // namespace l96
