// Parameterized property sweeps over the machine model: geometry scaling,
// miss-cost monotonicity, write-buffer depth, and the sequential-fill
// discount across layout patterns.
#include <gtest/gtest.h>

#include "sim/machine.h"

namespace l96::sim {
namespace {

MachineTrace walk(Addr base, std::uint32_t instrs, std::uint32_t stride = 4) {
  MachineTrace t;
  for (std::uint32_t i = 0; i < instrs; ++i) {
    t.push_back({base + Addr{i} * stride, InstrClass::kIAlu, 0, false});
  }
  return t;
}

// Bigger i-caches never cause more misses on the same trace.
class IcacheSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(IcacheSizeSweep, MissesMonotoneInCacheSize) {
  MemorySystem::Config small;
  small.icache_bytes = GetParam();
  MemorySystem::Config big;
  big.icache_bytes = GetParam() * 2;

  // A looping pattern bigger than the small cache.
  MachineTrace t;
  const std::uint32_t span = GetParam() * 3 / 2;
  for (int rep = 0; rep < 4; ++rep) {
    for (std::uint32_t a = 0; a < span; a += 4) {
      t.push_back({0x100000 + a, InstrClass::kIAlu, 0, false});
    }
  }
  Machine m_small(small, Cpu::Config{});
  Machine m_big(big, Cpu::Config{});
  EXPECT_GE(m_small.run(t).icache.misses, m_big.run(t).icache.misses);
}

INSTANTIATE_TEST_SUITE_P(Sizes, IcacheSizeSweep,
                         ::testing::Values(1024u, 2048u, 4096u, 8192u,
                                           16384u));

// Higher miss penalties never reduce total cycles.
class PenaltySweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PenaltySweep, CyclesMonotoneInBHitCost) {
  MemorySystem::Config base;
  MemorySystem::Config costly;
  costly.b_hit_cycles = base.b_hit_cycles + GetParam();
  costly.b_hit_seq_cycles = base.b_hit_seq_cycles + GetParam();
  auto t = walk(0x10000, 4096);
  Machine m1(base, Cpu::Config{});
  Machine m2(costly, Cpu::Config{});
  Machine::Options o;
  o.warmup_passes = 1;  // warm b-cache: isolates the b-hit cost
  o.scrub_fraction = 1.0;
  EXPECT_LE(m1.run(t, o).cycles(), m2.run(t, o).cycles());
}

INSTANTIATE_TEST_SUITE_P(Penalties, PenaltySweep,
                         ::testing::Values(1u, 5u, 10u, 40u));

// Deeper write buffers never increase forced retires.
class WbufSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WbufSweep, ForcedRetiresMonotoneInDepth) {
  auto run_with_depth = [](std::uint32_t depth) {
    MemorySystem::Config cfg;
    cfg.wbuf_depth = depth;
    MemorySystem m(cfg);
    std::uint64_t seed = 11;
    for (int i = 0; i < 2000; ++i) {
      seed = seed * 6364136223846793005ULL + 1;
      m.store(0x80000000 + (seed >> 30) % 8192);
    }
    return m.wbuf().forced_retires();
  };
  EXPECT_GE(run_with_depth(GetParam()), run_with_depth(GetParam() * 2));
}

INSTANTIATE_TEST_SUITE_P(Depths, WbufSweep, ::testing::Values(1u, 2u, 4u));

TEST(SequentialFill, StraightLineCheaperThanStrided) {
  // Same number of block misses; sequential blocks get the fill discount.
  MemorySystem::Config cfg;
  Machine::Options o;
  o.warmup_passes = 1;
  o.scrub_fraction = 1.0;

  auto seq = walk(0x10000, 1024);               // 128 sequential blocks
  MachineTrace strided;
  for (int i = 0; i < 128; ++i) {
    // one instruction per block, blocks 2 apart: never sequential
    strided.push_back(
        {0x10000 + static_cast<Addr>(i) * 64, InstrClass::kIAlu, 0, false});
  }
  Machine m1(cfg, Cpu::Config{});
  Machine m2(cfg, Cpu::Config{});
  auto r_seq = m1.run(seq, o);
  auto r_str = m2.run(strided, o);
  ASSERT_EQ(r_seq.icache.misses, 128u);
  ASSERT_EQ(r_str.icache.misses, 128u);
  EXPECT_LT(r_seq.stalls.ifetch_stall_cycles,
            r_str.stalls.ifetch_stall_cycles);
}

TEST(BcacheWriteback, DirtyEvictionsCounted) {
  MemorySystem::Config cfg;
  cfg.bcache_bytes = 4096;  // tiny b-cache to force evictions
  MemorySystem m(cfg);
  // Dirty many distinct blocks via the write buffer.
  for (Addr a = 0; a < 16 * 4096; a += 32) m.store(0x80000000 + a);
  m.drain_writes();
  EXPECT_GT(m.bcache().stats().writebacks, 0u);
}

TEST(CpuFrequency, ProcessingTimeScalesWithClock) {
  RunResult r;
  r.instructions = 1750;
  r.issue_cycles = 1750;
  r.stall_cycles = 0;
  EXPECT_NEAR(r.processing_us(175'000'000), 10.0, 1e-9);
  EXPECT_NEAR(r.processing_us(350'000'000), 5.0, 1e-9);
}

TEST(Geometry, BlockSizeAffectsFootprintMisses) {
  MemorySystem::Config small_blocks;
  small_blocks.block_bytes = 16;
  MemorySystem::Config big_blocks;
  big_blocks.block_bytes = 64;
  auto t = walk(0x10000, 2048);
  Machine m1(small_blocks, Cpu::Config{});
  Machine m2(big_blocks, Cpu::Config{});
  // Sequential code: bigger blocks mean fewer fetch misses.
  EXPECT_GT(m1.run(t).icache.misses, m2.run(t).icache.misses);
}

}  // namespace
}  // namespace l96::sim
