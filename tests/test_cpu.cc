// Tests for the dual-issue CPU timing model (iCPI).
#include <gtest/gtest.h>

#include "sim/cpu.h"

namespace l96::sim {
namespace {

MachineInstr in(InstrClass cls, bool taken = false) {
  return MachineInstr{0, cls, 0, taken};
}

Cpu::Config always_pair() {
  Cpu::Config c;
  c.pair_success_permille = 1000;
  return c;
}

TEST(Cpu, EmptyTrace) {
  Cpu cpu;
  auto s = cpu.time_trace({});
  EXPECT_EQ(s.instructions, 0u);
  EXPECT_EQ(s.issue_cycles, 0u);
  EXPECT_DOUBLE_EQ(s.icpi(), 0.0);
}

TEST(Cpu, SingleIssueBaseline) {
  Cpu::Config c;
  c.dual_issue = false;
  Cpu cpu(c);
  MachineTrace t(100, in(InstrClass::kIAlu));
  auto s = cpu.time_trace(t);
  EXPECT_EQ(s.issue_cycles, 100u);
  EXPECT_EQ(s.dual_issues, 0u);
  EXPECT_DOUBLE_EQ(s.icpi(), 1.0);
}

TEST(Cpu, PairsIntegerWithMemory) {
  Cpu cpu(always_pair());
  MachineTrace t;
  for (int i = 0; i < 50; ++i) {
    t.push_back(in(InstrClass::kIAlu));
    t.push_back(in(InstrClass::kLoad));
  }
  auto s = cpu.time_trace(t);
  EXPECT_EQ(s.dual_issues, 50u);
  EXPECT_EQ(s.issue_cycles, 50u);
  EXPECT_DOUBLE_EQ(s.icpi(), 0.5);
}

TEST(Cpu, TwoIntegerOpsDoNotPair) {
  Cpu cpu(always_pair());
  MachineTrace t(10, in(InstrClass::kIAlu));
  auto s = cpu.time_trace(t);
  EXPECT_EQ(s.dual_issues, 0u);
  EXPECT_EQ(s.issue_cycles, 10u);
}

TEST(Cpu, TwoMemoryOpsDoNotPair) {
  Cpu cpu(always_pair());
  MachineTrace t(10, in(InstrClass::kLoad));
  auto s = cpu.time_trace(t);
  EXPECT_EQ(s.dual_issues, 0u);
}

TEST(Cpu, TakenBranchEndsIssueGroup) {
  Cpu cpu(always_pair());
  MachineTrace t;
  t.push_back(in(InstrClass::kCondBranch, /*taken=*/true));
  t.push_back(in(InstrClass::kIAlu));
  auto s = cpu.time_trace(t);
  EXPECT_EQ(s.dual_issues, 0u);  // taken branch cannot lead a pair
}

TEST(Cpu, NotTakenBranchCanPair) {
  Cpu cpu(always_pair());
  MachineTrace t;
  t.push_back(in(InstrClass::kCondBranch, /*taken=*/false));
  t.push_back(in(InstrClass::kIAlu));
  auto s = cpu.time_trace(t);
  EXPECT_EQ(s.dual_issues, 1u);
}

TEST(Cpu, TakenBranchPenalty) {
  Cpu::Config c;
  c.dual_issue = false;
  c.taken_branch_penalty = 3;
  Cpu cpu(c);
  MachineTrace t;
  t.push_back(in(InstrClass::kJump, true));
  t.push_back(in(InstrClass::kIAlu));
  auto s = cpu.time_trace(t);
  EXPECT_EQ(s.taken_branches, 1u);
  EXPECT_EQ(s.issue_cycles, 2u + 3u);
}

TEST(Cpu, CallAndRetCountAsTaken) {
  Cpu::Config c;
  c.dual_issue = false;
  Cpu cpu(c);
  MachineTrace t;
  t.push_back(in(InstrClass::kCall, true));
  t.push_back(in(InstrClass::kRet, true));
  auto s = cpu.time_trace(t);
  EXPECT_EQ(s.taken_branches, 2u);
}

TEST(Cpu, IMulPenaltyAndNoPairing) {
  Cpu::Config c;
  c.imul_penalty = 19;
  c.pair_success_permille = 1000;
  Cpu cpu(c);
  MachineTrace t;
  t.push_back(in(InstrClass::kIMul));
  t.push_back(in(InstrClass::kLoad));
  auto s = cpu.time_trace(t);
  EXPECT_EQ(s.imul_count, 1u);
  EXPECT_EQ(s.dual_issues, 0u);
  EXPECT_EQ(s.issue_cycles, 2u + 19u);
}

TEST(Cpu, PairSuccessZeroDisablesPairing) {
  Cpu::Config c;
  c.pair_success_permille = 0;
  Cpu cpu(c);
  MachineTrace t;
  for (int i = 0; i < 20; ++i) {
    t.push_back(in(InstrClass::kIAlu));
    t.push_back(in(InstrClass::kLoad));
  }
  auto s = cpu.time_trace(t);
  EXPECT_EQ(s.dual_issues, 0u);
}

// Property: iCPI is bounded below by 0.5 (max dual issue) and is monotone
// in the taken-branch count.
TEST(CpuProperty, IcpiBounds) {
  Cpu cpu(always_pair());
  MachineTrace t;
  for (int i = 0; i < 1000; ++i) {
    t.push_back(in(i % 2 == 0 ? InstrClass::kIAlu : InstrClass::kLoad));
  }
  auto s = cpu.time_trace(t);
  EXPECT_GE(s.icpi(), 0.5);
  EXPECT_LE(s.icpi(), 1.0);

  // Turning some ops into taken branches can only increase cycles.
  MachineTrace t2 = t;
  for (std::size_t i = 0; i < t2.size(); i += 10) {
    t2[i] = in(InstrClass::kCondBranch, true);
  }
  auto s2 = cpu.time_trace(t2);
  EXPECT_GT(s2.issue_cycles, s.issue_cycles);
}

}  // namespace
}  // namespace l96::sim
