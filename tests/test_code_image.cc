// Tests for the code model, image builder, and layout strategies.
#include <gtest/gtest.h>

#include <map>

#include "code/image.h"
#include "code/model.h"
#include "code/trace.h"

namespace l96::code {
namespace {

Function make_fn(std::string name, FnKind kind,
                 std::vector<std::pair<std::uint16_t, BlockClass>> blocks) {
  Function f;
  f.name = std::move(name);
  f.kind = kind;
  f.prologue_instrs = 6;
  f.epilogue_instrs = 4;
  int i = 0;
  for (auto [n, cls] : blocks) {
    BasicBlock b;
    b.label = std::string("b") + std::to_string(i++);
    b.cls = cls;
    b.instructions = n;
    f.blocks.push_back(b);
  }
  return f;
}

struct Fixture {
  CodeRegistry reg;
  FnId a, b, lib;
  Fixture() {
    a = reg.add(make_fn("alpha", FnKind::kPath,
                        {{40, BlockClass::kMainline},
                         {30, BlockClass::kError},
                         {50, BlockClass::kMainline}}));
    b = reg.add(make_fn("beta", FnKind::kPath,
                        {{60, BlockClass::kMainline},
                         {20, BlockClass::kColdLoop}}));
    lib = reg.add(make_fn("libfn", FnKind::kLibrary,
                          {{24, BlockClass::kMainline}}));
  }
  PathTrace profile() const {
    PathTrace t;
    Recorder rec;
    rec.enable(&t);
    rec.call(a);
    rec.block(a, 0);
    rec.call(lib);
    rec.block(lib, 0);
    rec.ret();
    rec.block(a, 2);
    rec.call(b);
    rec.block(b, 0);
    rec.ret();
    rec.ret();
    return t;
  }
};

TEST(CodeRegistry, AddAndLookup) {
  Fixture f;
  EXPECT_EQ(f.reg.size(), 3u);
  EXPECT_EQ(f.reg.find("alpha"), f.a);
  EXPECT_EQ(f.reg.find("missing"), kInvalidFn);
  EXPECT_THROW(f.reg.require("missing"), std::out_of_range);
  EXPECT_THROW(f.reg.add(make_fn("alpha", FnKind::kPath, {})),
               std::invalid_argument);
}

TEST(CodeRegistry, InstructionAccounting) {
  Fixture f;
  const Function& fn = f.reg.fn(f.a);
  EXPECT_EQ(fn.mainline_instructions(), 90u);
  EXPECT_EQ(fn.outlined_instructions(), 30u);
  EXPECT_EQ(fn.total_instructions(), 120u);
}

StackConfig cfg_outline() {
  auto c = StackConfig::Out();
  return c;
}

TEST(Image, StdKeepsBlocksInline) {
  Fixture f;
  StackConfig cfg = StackConfig::Std();
  CodeImage img = ImageBuilder(f.reg, cfg).set_profile(f.profile()).build();
  const FnPlacement& pa = img.placement(f.a, false);
  // Declared order: b0, error, b2 — all placed, in ascending addresses.
  EXPECT_LT(pa.blocks[0].addr, pa.blocks[1].addr);
  EXPECT_LT(pa.blocks[1].addr, pa.blocks[2].addr);
  EXPECT_FALSE(pa.blocks[1].outlined);
}

TEST(Image, OutliningMovesColdBlocksPastMainline) {
  Fixture f;
  CodeImage img =
      ImageBuilder(f.reg, cfg_outline()).set_profile(f.profile()).build();
  const FnPlacement& pa = img.placement(f.a, false);
  EXPECT_TRUE(pa.blocks[1].outlined);
  // Mainline packs: b2 directly after b0 (plus any call slack).
  EXPECT_GT(pa.blocks[1].addr, pa.blocks[2].addr);
  // The outlined block is past the whole mainline of the function.
  EXPECT_GE(pa.blocks[1].addr, pa.epilogue_addr + 4 * pa.epilogue_words);
}

TEST(Image, OutliningShrinksHotSegment) {
  Fixture f;
  CodeImage std_img =
      ImageBuilder(f.reg, StackConfig::Std()).set_profile(f.profile()).build();
  CodeImage out_img =
      ImageBuilder(f.reg, cfg_outline()).set_profile(f.profile()).build();
  EXPECT_LT(out_img.hot_words(), std_img.hot_words());
}

TEST(Image, GapModelOnlyWithoutOutlining) {
  Fixture f;
  CodeImage std_img =
      ImageBuilder(f.reg, StackConfig::Std()).set_profile(f.profile()).build();
  CodeImage out_img =
      ImageBuilder(f.reg, cfg_outline()).set_profile(f.profile()).build();
  // STD mainline blocks carry inline-gap slack; outlined ones do not.
  EXPECT_GT(std_img.placement(f.a, false).blocks[0].slack,
            out_img.placement(f.a, false).blocks[0].slack);
}

TEST(Image, CloningMovesOutlinedCodeToSharedColdSegment) {
  Fixture f;
  CodeImage img = ImageBuilder(f.reg, StackConfig::Clo())
                      .set_profile(f.profile())
                      .build();
  const FnPlacement& pa = img.placement(f.a, false);
  const FnPlacement& pb = img.placement(f.b, false);
  // Outlined blocks live far from the hot segment.
  EXPECT_GT(pa.blocks[1].addr, img.hot_end());
  EXPECT_GT(pb.blocks[1].addr, img.hot_end());
}

TEST(Image, PrologueSpecializationWithCloning) {
  Fixture f;
  CodeImage clo = ImageBuilder(f.reg, StackConfig::Clo())
                      .set_profile(f.profile())
                      .build();
  CodeImage out =
      ImageBuilder(f.reg, cfg_outline()).set_profile(f.profile()).build();
  EXPECT_LT(clo.placement(f.a, false).prologue_words,
            out.placement(f.a, false).prologue_words);
  EXPECT_FALSE(clo.placement(f.a, false).got_load_on_call);
  EXPECT_TRUE(out.placement(f.a, false).got_load_on_call);
}

// Property: across all layouts, no two placed hot regions overlap.
class LayoutOverlap : public ::testing::TestWithParam<LayoutKind> {};

TEST_P(LayoutOverlap, NoOverlappingPlacements) {
  Fixture f;
  StackConfig cfg = StackConfig::Clo();
  cfg.layout = GetParam();
  CodeImage img =
      ImageBuilder(f.reg, cfg).set_profile(f.profile()).build();

  std::map<sim::Addr, sim::Addr> regions;  // start -> end
  auto add = [&](sim::Addr start, sim::Addr end) {
    if (start == end) return;
    for (auto& [s, e] : regions) {
      ASSERT_TRUE(end <= s || start >= e)
          << "overlap: [" << start << "," << end << ") vs [" << s << "," << e
          << ")";
    }
    regions[start] = end;
  };
  for (FnId id : {f.a, f.b, f.lib}) {
    const FnPlacement& p = img.placement(id, false);
    add(p.entry, p.entry + 4ull * p.prologue_words);
    add(p.epilogue_addr, p.epilogue_addr + 4ull * p.epilogue_words);
    for (const auto& bp : p.blocks) add(bp.addr, bp.end());
  }
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, LayoutOverlap,
                         ::testing::Values(LayoutKind::kLinkOrder,
                                           LayoutKind::kLinear,
                                           LayoutKind::kBipartite,
                                           LayoutKind::kMicroPosition,
                                           LayoutKind::kPessimal,
                                           LayoutKind::kRandom));

TEST(Image, BipartiteSeparatesLibraryAndPathSets) {
  Fixture f;
  StackConfig cfg = StackConfig::Clo();
  CodeImage img =
      ImageBuilder(f.reg, cfg).set_profile(f.profile()).build();
  const auto& lib_p = img.placement(f.lib, false);
  const auto& a_p = img.placement(f.a, false);
  // Library code occupies low cache-set offsets; path code starts past the
  // library window.
  const std::uint64_t lib_off = lib_p.entry % 8192;
  const std::uint64_t a_off = a_p.entry % 8192;
  EXPECT_LT(lib_off, a_off);
}

TEST(Image, PessimalAliasesHotUnits) {
  Fixture f;
  StackConfig cfg = StackConfig::Bad();
  CodeImage img =
      ImageBuilder(f.reg, cfg).set_profile(f.profile()).build();
  const auto sa = img.placement(f.a, false).entry % 8192;
  const auto sb = img.placement(f.b, false).entry % 8192;
  EXPECT_EQ(sa, sb);  // same i-cache set
}

TEST(Image, PathInliningBuildsComposite) {
  Fixture f;
  StackConfig cfg = StackConfig::Pin();
  CodeImage img = ImageBuilder(f.reg, cfg)
                      .set_profile(f.profile())
                      .declare_path(PathSpec{"p", {f.a, f.b}})
                      .build();
  EXPECT_EQ(img.composite_of(f.a), img.composite_of(f.b));
  EXPECT_GE(img.composite_of(f.a), 0);
  EXPECT_EQ(img.composite_of(f.lib), -1);
  // Members keep a standalone (slow-path) placement in the cold segment.
  const auto& cold_a = img.placement(f.a, false);
  EXPECT_GT(cold_a.entry, img.hot_end());
  // Composite placement differs.
  const auto& hot_a = img.placement(f.a, true);
  EXPECT_NE(hot_a.blocks[0].addr, cold_a.blocks[0].addr);
}

TEST(Image, CompositeBlocksFollowProfileOrder) {
  Fixture f;
  StackConfig cfg = StackConfig::Pin();
  CodeImage img = ImageBuilder(f.reg, cfg)
                      .set_profile(f.profile())
                      .declare_path(PathSpec{"p", {f.a, f.b}})
                      .build();
  // Profile order: a.b0, a.b2, b.b0 — composite addresses ascend that way.
  const auto& pa = img.placement(f.a, true);
  const auto& pb = img.placement(f.b, true);
  EXPECT_LT(pa.blocks[0].addr, pa.blocks[2].addr);
  EXPECT_LT(pa.blocks[2].addr, pb.blocks[0].addr);
}

TEST(Image, PathInliningRequiresProfile) {
  Fixture f;
  StackConfig cfg = StackConfig::Pin();
  ImageBuilder b(f.reg, cfg);
  b.declare_path(PathSpec{"p", {f.a}});
  EXPECT_THROW(b.build(), std::logic_error);
}

TEST(Image, PinDiscountShrinksCompositeBlocks) {
  Fixture f;
  f.reg.fn(f.a).pin_discount_permille = 500;
  StackConfig cfg = StackConfig::Pin();
  CodeImage img = ImageBuilder(f.reg, cfg)
                      .set_profile(f.profile())
                      .declare_path(PathSpec{"p", {f.a, f.b}})
                      .build();
  EXPECT_EQ(img.placement(f.a, true).blocks[0].words, 20u);   // 40 * 0.5
  EXPECT_EQ(img.placement(f.a, false).blocks[0].words, 40u);  // slow path
}

TEST(Image, GotAddressesAreDistinct) {
  Fixture f;
  CodeImage img =
      ImageBuilder(f.reg, StackConfig::Std()).set_profile(f.profile()).build();
  EXPECT_NE(img.got_addr(f.a), img.got_addr(f.b));
}

}  // namespace
}  // namespace l96::code
