// Tests for the capture machinery: one receive activation per roundtrip,
// the transmit split point, and trace well-formedness.
#include <gtest/gtest.h>

#include <algorithm>

#include "harness/experiment.h"
#include "protocols/stack_code.h"

namespace l96 {
namespace {

TEST(Capture, OneActivationHasBalancedCallsAndReturns) {
  harness::Experiment e(net::StackKind::kTcpIp, code::StackConfig::Std(),
                        code::StackConfig::Std());
  e.run();
  const auto& t = e.client_trace();
  ASSERT_FALSE(t.empty());
  int depth = 0;
  int min_depth = 0;
  for (const auto& ev : t.events) {
    if (ev.kind == code::EventKind::kCall) ++depth;
    if (ev.kind == code::EventKind::kReturn) --depth;
    min_depth = std::min(min_depth, depth);
  }
  EXPECT_EQ(depth, 0);      // balanced
  EXPECT_EQ(min_depth, 0);  // never returns past the activation root
}

TEST(Capture, ActivationRootIsTheReceiveInterrupt) {
  harness::Experiment e(net::StackKind::kTcpIp, code::StackConfig::Std(),
                        code::StackConfig::Std());
  e.run();
  const auto& t = e.client_trace();
  const auto lance_intr =
      e.world().client().registry().require("lance_intr");
  ASSERT_EQ(t.events.front().kind, code::EventKind::kCall);
  EXPECT_EQ(t.events.front().fn, lance_intr);
}

TEST(Capture, SplitFollowsTheTransmitKick) {
  harness::Experiment e(net::StackKind::kTcpIp, code::StackConfig::Std(),
                        code::StackConfig::Std());
  e.run();
  const std::size_t split = e.client_tx_split();
  const auto& t = e.client_trace();
  ASSERT_GT(split, 0u);
  ASSERT_LE(split, t.events.size());
  // The event just before the split is the LANCE kick block.
  const auto& ev = t.events[split - 1];
  EXPECT_EQ(ev.kind, code::EventKind::kBlock);
  EXPECT_EQ(ev.block,
            static_cast<code::BlockId>(proto::blk::kLanceSendKick));
}

TEST(Capture, PostSplitContainsOverlappedWork) {
  harness::Experiment e(net::StackKind::kTcpIp, code::StackConfig::Std(),
                        code::StackConfig::Std());
  e.run();
  const auto& t = e.client_trace();
  const auto refresh = e.world().client().registry().require("msg_refresh");
  bool refresh_after_split = false;
  for (std::size_t i = e.client_tx_split(); i < t.events.size(); ++i) {
    if (t.events[i].kind == code::EventKind::kCall &&
        t.events[i].fn == refresh) {
      refresh_after_split = true;
    }
  }
  // The message refresh is overlapped with communication (Section 2.2.5).
  EXPECT_TRUE(refresh_after_split);
}

TEST(Capture, EveryBlockEventFollowsItsFunction) {
  harness::Experiment e(net::StackKind::kRpc, code::StackConfig::Std(),
                        code::StackConfig::All());
  e.run();
  const auto& t = e.client_trace();
  std::vector<code::FnId> stack;
  for (const auto& ev : t.events) {
    switch (ev.kind) {
      case code::EventKind::kCall:
        stack.push_back(ev.fn);
        break;
      case code::EventKind::kReturn:
        if (!stack.empty()) stack.pop_back();
        break;
      case code::EventKind::kBlock:
        ASSERT_FALSE(stack.empty());
        EXPECT_EQ(ev.fn, stack.back());
        break;
      default:
        break;
    }
  }
}

TEST(Capture, BlockIdsAreValidForTheirFunctions) {
  harness::Experiment e(net::StackKind::kTcpIp, code::StackConfig::Std(),
                        code::StackConfig::Std());
  e.run();
  const auto& reg = e.world().client().registry();
  for (const auto& ev : e.client_trace().events) {
    if (ev.kind == code::EventKind::kBlock) {
      ASSERT_LT(ev.fn, reg.size());
      ASSERT_LT(ev.block, reg.fn(ev.fn).blocks.size());
    }
  }
}

TEST(Capture, DataRefsLandInDataRegions) {
  harness::Experiment e(net::StackKind::kTcpIp, code::StackConfig::Std(),
                        code::StackConfig::Std());
  e.run();
  for (const auto& ev : e.client_trace().events) {
    if (ev.kind == code::EventKind::kLoad ||
        ev.kind == code::EventKind::kStore) {
      EXPECT_GE(ev.addr, 0x8000'0000u) << "data ref into code space";
    }
  }
}

TEST(Capture, ErrorBlocksAbsentFromSteadyState) {
  // The captured steady-state roundtrip must not execute outlined error
  // paths (that is what makes them outlining candidates).
  harness::Experiment e(net::StackKind::kTcpIp, code::StackConfig::Std(),
                        code::StackConfig::Std());
  e.run();
  const auto& reg = e.world().client().registry();
  for (const auto& ev : e.client_trace().events) {
    if (ev.kind != code::EventKind::kBlock) continue;
    const auto& b = reg.fn(ev.fn).blocks[ev.block];
    EXPECT_NE(b.cls, code::BlockClass::kError)
        << reg.fn(ev.fn).name << ":" << b.label;
  }
}

}  // namespace
}  // namespace l96
