// Tests for trace replay through the whole machine model.
#include <gtest/gtest.h>

#include "sim/machine.h"

namespace l96::sim {
namespace {

MachineTrace straight_line(Addr base, int n, int load_every = 0,
                           Addr data = 0x8000'0000) {
  MachineTrace t;
  for (int i = 0; i < n; ++i) {
    MachineInstr in;
    in.pc = base + 4ull * i;
    in.cls = (load_every && i % load_every == 0) ? InstrClass::kLoad
                                                 : InstrClass::kIAlu;
    in.ea = data + 8ull * i;
    t.push_back(in);
  }
  return t;
}

TEST(Machine, ColdRunCountsColdMisses) {
  Machine m;
  auto t = straight_line(0x10000, 256);  // 1 KiB of code = 32 blocks
  auto r = m.run(t);
  EXPECT_EQ(r.instructions, 256u);
  EXPECT_EQ(r.icache.accesses, 256u);
  EXPECT_EQ(r.icache.misses, 32u);
  EXPECT_EQ(r.icache.repl_misses, 0u);
}

TEST(Machine, CpiDecomposition) {
  Machine m;
  auto t = straight_line(0x10000, 512, 4);
  auto r = m.run(t);
  EXPECT_NEAR(r.cpi(), r.icpi() + r.mcpi(), 1e-9);
  EXPECT_GT(r.mcpi(), 0.0);
  EXPECT_EQ(r.cycles(), r.issue_cycles + r.stall_cycles);
}

TEST(Machine, WarmupEliminatesColdMisses) {
  Machine m;
  auto t = straight_line(0x10000, 256);
  Machine::Options o;
  o.warmup_passes = 1;
  o.scrub_fraction = 0.0;
  auto r = m.run(t, o);
  EXPECT_EQ(r.icache.misses, 0u);  // everything resident after warm-up
  EXPECT_EQ(r.stall_cycles, 0u);
}

TEST(Machine, ScrubBringsMissesBack) {
  Machine m;
  auto t = straight_line(0x10000, 256);
  Machine::Options o;
  o.warmup_passes = 1;
  o.scrub_fraction = 1.0;
  auto r = m.run(t, o);
  EXPECT_EQ(r.icache.misses, 32u);
  EXPECT_EQ(r.icache.repl_misses, 32u);  // all classified replacement
}

TEST(Machine, PartialScrubInBetween) {
  Machine m;
  auto t = straight_line(0x10000, 2048);  // 256 blocks: fills the i-cache
  Machine::Options o;
  o.warmup_passes = 1;
  o.scrub_fraction = 0.5;
  auto r = m.run(t, o);
  EXPECT_GT(r.icache.misses, 60u);
  EXPECT_LT(r.icache.misses, 200u);
}

TEST(Machine, DcacheCombinedColumn) {
  Machine m;
  MachineTrace t;
  // 4 loads from distinct blocks, 4 stores (2 merge).
  for (int i = 0; i < 4; ++i) {
    t.push_back({0x10000 + 4ull * i, InstrClass::kLoad,
                 0x8000'0000 + 64ull * i, false});
  }
  t.push_back({0x10010, InstrClass::kStore, 0x9000'0000, false});
  t.push_back({0x10014, InstrClass::kStore, 0x9000'0008, false});  // merges
  t.push_back({0x10018, InstrClass::kStore, 0x9000'0040, false});
  t.push_back({0x1001C, InstrClass::kStore, 0x9000'0044, false});  // merges
  auto r = m.run(t);
  EXPECT_EQ(r.dcache_combined.accesses, 8u);   // 4 loads + 4 stores
  EXPECT_EQ(r.dcache_combined.misses, 6u);     // 4 load misses + 2 allocs
}

TEST(Machine, BcacheTrafficSplit) {
  Machine m;
  auto t = straight_line(0x10000, 64, 8);
  t.push_back({0x11000, InstrClass::kStore, 0xA000'0000, false});
  auto r = m.run(t);  // drain_at_end retires the store
  EXPECT_GT(r.traffic.from_ifetch, 0u);
  EXPECT_GT(r.traffic.from_data, 0u);
  EXPECT_EQ(r.traffic.from_writes, 1u);
}

TEST(Machine, TakenBranchesSurface) {
  Machine m;
  MachineTrace t;
  t.push_back({0x10000, InstrClass::kIAlu, 0, false});
  t.push_back({0x10004, InstrClass::kCondBranch, 0, true});
  t.push_back({0x20000, InstrClass::kIAlu, 0, false});
  auto r = m.run(t);
  EXPECT_EQ(r.taken_branches, 1u);
}

TEST(Machine, DeterministicAcrossRuns) {
  auto t = straight_line(0x10000, 4096, 3);
  Machine::Options o;
  o.warmup_passes = 2;
  o.scrub_fraction = 0.6;
  Machine m1, m2;
  auto r1 = m1.run(t, o);
  auto r2 = m2.run(t, o);
  EXPECT_EQ(r1.cycles(), r2.cycles());
  EXPECT_EQ(r1.icache.misses, r2.icache.misses);
}

TEST(Machine, SeedChangesScrubOutcome) {
  // Different scrub seeds must evict different line subsets.
  auto survivors = [](std::uint64_t seed) {
    MemorySystem m;
    for (Addr a = 0; a < 8192; a += 32) m.ifetch(0x10000 + a);
    m.scrub_primary(0.5, 0.5, seed);
    std::vector<bool> s;
    for (Addr a = 0; a < 8192; a += 32) {
      s.push_back(m.icache().contains(0x10000 + a));
    }
    return s;
  };
  EXPECT_NE(survivors(1), survivors(2));
}

// Property: a trace that thrashes one i-cache set is strictly slower than
// the same instructions laid out sequentially.
TEST(MachineProperty, ConflictLayoutSlower) {
  MachineTrace seq, conflict;
  for (int rep = 0; rep < 4; ++rep) {
    for (int f = 0; f < 4; ++f) {
      for (int i = 0; i < 16; ++i) {
        seq.push_back({0x10000 + 64ull * 4 * f + 4ull * i + 0x40000ull * 0,
                       InstrClass::kIAlu, 0, false});
        // conflict: each "function" aliases the same set (8 KiB apart)
        conflict.push_back({0x10000 + 8192ull * f + 4ull * i,
                            InstrClass::kIAlu, 0, false});
      }
    }
  }
  Machine m1, m2;
  Machine::Options o;
  o.warmup_passes = 1;
  o.scrub_fraction = 0.0;
  auto rs = m1.run(seq, o);
  auto rc = m2.run(conflict, o);
  EXPECT_LT(rs.stall_cycles, rc.stall_cycles);
}

}  // namespace
}  // namespace l96::sim
