// Timer hygiene: tearing a stack down while retransmission and reassembly
// timers are armed must cancel every event — the EventManager queue drains
// to zero and no partial state survives.  These are the leak classes the
// chaos soak's teardown check guards against.
#include <gtest/gtest.h>

#include "net/world.h"
#include "protocols/wire_format.h"

namespace l96 {
namespace {

TEST(TimerHygiene, TcpTeardownMidRetransmit) {
  net::World world(net::StackKind::kTcpIp, code::StackConfig::Std(),
                   code::StackConfig::Std());
  world.start(1000);
  ASSERT_TRUE(world.run_until_roundtrips(5));
  // Lose the next data segment so the client's retransmission timer is
  // armed and the stream is mid-recovery ...
  world.wire().drop_next(1);
  world.events().advance_by(50'000);  // rexmt pending, not yet fired
  // ... then rip every connection out from under it on both hosts.
  for (proto::TcpConn* c : world.client().tcp()->connections()) {
    world.client().tcp()->destroy(c);
  }
  for (proto::TcpConn* c : world.server().tcp()->connections()) {
    world.server().tcp()->destroy(c);
  }
  EXPECT_EQ(world.client().tcp()->open_connections(), 0u);
  EXPECT_EQ(world.server().tcp()->open_connections(), 0u);
  // Whatever was in flight lands on closed stacks; nothing may re-arm.
  ASSERT_TRUE(world.run_until(
      [&] { return world.events().pending() == 0; }, 60'000'000));
  EXPECT_EQ(world.events().pending(), 0u);
  EXPECT_TRUE(world.wire().conserved());
}

TEST(TimerHygiene, GracefulCloseUnderContinuingFaults) {
  // Close while the fault schedule keeps biting: FIN/ACK losses are
  // recovered and the close still converges with an empty queue.
  net::World world(net::StackKind::kTcpIp, code::StackConfig::Std(),
                   code::StackConfig::Std());
  net::FaultPlan plan;
  plan.seed = 21;
  plan.start_after_frames = 4;
  plan.rates[0] = {.drop = 0.05, .corrupt = 0.05};
  plan.rates[1] = {.drop = 0.05, .corrupt = 0.05};
  world.set_fault_plan(plan);
  world.start(1000);
  ASSERT_TRUE(world.run_until_roundtrips(20, 120'000'000));
  world.client().tcptest()->set_close_on_peer_close(true);
  world.server().tcptest()->set_close_on_peer_close(true);
  world.client().tcptest()->connection()->close();
  ASSERT_TRUE(world.run_until(
      [&] { return world.events().pending() == 0; }, 600'000'000));
  EXPECT_EQ(world.events().pending(), 0u);
  EXPECT_TRUE(world.wire().conserved());
}

TEST(TimerHygiene, ChanFlushMidRetransmit) {
  net::World world(net::StackKind::kRpc, code::StackConfig::Std(),
                   code::StackConfig::All());
  world.start(1);
  ASSERT_TRUE(world.run_until_roundtrips(1));
  world.server().mselect()->register_service(
      50, [&](xk::Message&) { return xk::Message(world.server().arena(), 0, 0); });
  // Lose the request so the channel sits busy with its retransmission
  // timer armed.
  world.wire().drop_next(1);
  bool replied = false;
  xk::Message req(world.client().arena(), 96, 0);
  world.client().mselect()->call(50, req, [&](xk::Message&) { replied = true; });
  world.events().advance_by(20'000);  // timer armed, first retry not yet due
  std::size_t busy = 0;
  for (std::uint16_t ch = 0; ch < world.client().chan()->nchans(); ++ch) {
    if (world.client().chan()->busy(ch)) ++busy;
  }
  ASSERT_EQ(busy, 1u);

  world.client().chan()->flush();
  for (std::uint16_t ch = 0; ch < world.client().chan()->nchans(); ++ch) {
    EXPECT_FALSE(world.client().chan()->busy(ch));
  }
  ASSERT_TRUE(world.run_until(
      [&] { return world.events().pending() == 0; }, 60'000'000));
  EXPECT_EQ(world.events().pending(), 0u);
  EXPECT_FALSE(replied);  // the call was abandoned, not answered late
}

TEST(TimerHygiene, BlastFlushMidReassembly) {
  net::World world(net::StackKind::kRpc, code::StackConfig::Std(),
                   code::StackConfig::All());
  world.start(1);
  ASSERT_TRUE(world.run_until_roundtrips(1));
  const std::size_t base_pending = world.events().pending();

  // First fragment of a 3-fragment message; the rest never arrives.
  const auto& cmac = world.client().address().mac;
  const auto& smac = world.server().address().mac;
  std::vector<std::uint8_t> f;
  f.insert(f.end(), cmac.begin(), cmac.end());
  f.insert(f.end(), smac.begin(), smac.end());
  f.push_back(0x88);
  f.push_back(0xB5);
  std::array<std::uint8_t, proto::Blast::kHeaderBytes> bh{};
  proto::put_be32(bh, 0, 0xAB01);
  proto::put_be16(bh, 4, 0);
  proto::put_be16(bh, 6, 3);
  proto::put_be32(bh, 8, 2500);
  std::vector<std::uint8_t> payload(1024, 0x33);
  proto::put_be16(bh, 14,
                  proto::inet_checksum(
                      payload, proto::checksum_accumulate(
                                   std::span(bh.data(), 14))));
  f.insert(f.end(), bh.begin(), bh.end());
  f.insert(f.end(), payload.begin(), payload.end());
  world.client().deliver(f);

  EXPECT_EQ(world.client().blast()->reassemblies_pending(), 1u);
  EXPECT_EQ(world.events().pending(), base_pending + 1);  // its timeout

  world.client().blast()->flush();
  EXPECT_EQ(world.client().blast()->reassemblies_pending(), 0u);
  EXPECT_EQ(world.events().pending(), base_pending);
}

TEST(TimerHygiene, IpReassemblyExpiresAbandonedFragments) {
  net::World world(net::StackKind::kTcpIp, code::StackConfig::Std(),
                   code::StackConfig::Std());
  world.start(2);
  ASSERT_TRUE(world.run_until_roundtrips(2));
  ASSERT_TRUE(world.run_until(
      [&] { return world.events().pending() == 0; }, 60'000'000));

  // A middle IP fragment (MF set) whose siblings never arrive.
  const auto& cmac = world.client().address().mac;
  const auto& smac = world.server().address().mac;
  std::vector<std::uint8_t> f;
  f.insert(f.end(), cmac.begin(), cmac.end());
  f.insert(f.end(), smac.begin(), smac.end());
  f.push_back(0x08);
  f.push_back(0x00);
  std::array<std::uint8_t, proto::kIpHeaderBytes> ih{};
  ih[0] = 0x45;
  proto::put_be16(ih, 2, proto::kIpHeaderBytes + 64);  // total length
  proto::put_be16(ih, 4, 0x7777);                      // datagram id
  proto::put_be16(ih, 6, 0x2000);                      // MF, offset 0
  ih[8] = 32;                                          // ttl
  ih[9] = 6;                                           // proto = TCP
  proto::put_be32(ih, 12, world.server().address().ip);
  proto::put_be32(ih, 16, world.client().address().ip);
  proto::put_be16(ih, 10, proto::inet_checksum(ih));
  f.insert(f.end(), ih.begin(), ih.end());
  f.resize(f.size() + 64, 0x44);
  world.client().deliver(f);

  EXPECT_EQ(world.client().ip()->reassemblies_pending(), 1u);
  EXPECT_EQ(world.events().pending(), 1u);  // the expiry timer

  const auto expired = world.client().ip()->reassemblies_expired();
  world.events().advance_by(600'000);  // past the 500 ms reassembly timeout
  EXPECT_EQ(world.client().ip()->reassemblies_expired(), expired + 1);
  EXPECT_EQ(world.client().ip()->reassemblies_pending(), 0u);
  EXPECT_EQ(world.events().pending(), 0u);
}

}  // namespace
}  // namespace l96
