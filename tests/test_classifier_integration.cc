// Integration tests for the path-inlining packet classifier: fast-path
// prediction on real frames, slow-path fallback on mismatches.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "net/world.h"
#include "protocols/stack_code.h"
#include "protocols/wire_format.h"

namespace l96 {
namespace {

TEST(ClassifierIntegration, AllTcpPingPongFramesMatchFastPath) {
  net::World w(net::StackKind::kTcpIp, code::StackConfig::All(),
               code::StackConfig::All());
  w.start(20);
  ASSERT_TRUE(w.run_until_roundtrips(20));
  EXPECT_GT(w.client().classifier_hits(), 20u);
  EXPECT_EQ(w.client().classifier_misses(), 0u);
  EXPECT_EQ(w.server().classifier_misses(), 0u);
}

TEST(ClassifierIntegration, AllRpcPingPongFramesMatchFastPath) {
  net::World w(net::StackKind::kRpc, code::StackConfig::All(),
               code::StackConfig::All());
  w.start(10);
  ASSERT_TRUE(w.run_until_roundtrips(10));
  EXPECT_GT(w.client().classifier_hits(), 9u);
  EXPECT_EQ(w.client().classifier_misses(), 0u);
}

TEST(ClassifierIntegration, NoClassificationWithoutPathInlining) {
  net::World w(net::StackKind::kTcpIp, code::StackConfig::Std(),
               code::StackConfig::Std());
  w.start(5);
  ASSERT_TRUE(w.run_until_roundtrips(5));
  EXPECT_EQ(w.client().classifier_hits() + w.client().classifier_misses(),
            0u);
}

TEST(ClassifierIntegration, FragmentedIpTakesSlowPath) {
  net::World w(net::StackKind::kTcpIp, code::StackConfig::All(),
               code::StackConfig::All());
  w.start(5);
  ASSERT_TRUE(w.run_until_roundtrips(5));
  // Push a fragmented datagram through IP: the fragments must be rejected
  // by the classifier (fast path handles only unfragmented TCP).
  const auto misses_before = w.server().classifier_misses();
  xk::Message big(w.client().arena(), 64, 4000);
  w.client().ip()->send(w.server().address().ip, 200, big);
  w.events().advance_by(200'000);
  EXPECT_GT(w.server().classifier_misses(), misses_before);
}

TEST(ClassifierIntegration, RpcNackTakesSlowPath) {
  net::World w(net::StackKind::kRpc, code::StackConfig::All(),
               code::StackConfig::All());
  w.start(3);
  ASSERT_TRUE(w.run_until_roundtrips(3));
  // A multi-fragment request produces fragments with nfrags > 1: those
  // frames must not match the single-fragment fast path.
  w.server().mselect()->register_service(5, [&](xk::Message& req) {
    xk::Message r(w.server().arena(), 0, 0);
    (void)req;
    return r;
  });
  const auto misses_before = w.server().classifier_misses();
  xk::Message req(w.client().arena(), 128, 3000);
  bool replied = false;
  w.client().mselect()->call(5, req, [&](xk::Message&) { replied = true; });
  w.events().advance_by(30'000'000);
  EXPECT_TRUE(replied);
  EXPECT_GT(w.server().classifier_misses(), misses_before);
}

TEST(ClassifierIntegration, SlowPathLowersToStandalonePlacements) {
  // A captured activation bracketed by slow-path markers must execute from
  // the cold-segment standalone placements, not the composite.
  harness::Experiment e(net::StackKind::kTcpIp, code::StackConfig::All(),
                        code::StackConfig::All());
  e.run();
  auto& reg = e.world().client().registry();

  // Take the captured fast-path trace, wrap it in slow-path markers, and
  // lower both variants under the same PIN image.
  code::PathTrace fast = e.client_trace();
  code::PathTrace slow;
  slow.events.push_back(
      {code::EventKind::kMarker, code::kInvalidFn, 0,
       code::Marker::kSlowPathBegin, 0});
  slow.events.insert(slow.events.end(), fast.events.begin(),
                     fast.events.end());
  slow.events.push_back(
      {code::EventKind::kMarker, code::kInvalidFn, 0,
       code::Marker::kSlowPathEnd, 0});

  code::ImageBuilder b(reg, code::StackConfig::All());
  b.set_profile(fast);
  b.declare_path(proto::tcpip_output_path(reg));
  b.declare_path(proto::tcpip_input_path(reg));
  const code::CodeImage img = b.build();
  code::Lowering lower(reg, img, code::StackConfig::All());

  const auto mt_fast = lower.lower(fast);
  const auto mt_slow = lower.lower(slow);

  // Slow path re-pays the call overhead the composites eliminated.
  EXPECT_GT(mt_slow.size(), mt_fast.size());
  // And executes from the cold segment (addresses past the hot end).
  const auto cold_instrs = [&](const sim::MachineTrace& t) {
    std::size_t n = 0;
    for (const auto& in : t) {
      if (in.pc > img.hot_end() && in.pc < 0x8000'0000) ++n;
    }
    return n;
  };
  EXPECT_GT(cold_instrs(mt_slow), cold_instrs(mt_fast) + 1000);
}

TEST(ClassifierIntegration, OverheadParameterAffectsOnlyPinConfigs) {
  harness::MachineParams params;
  params.classifier_overhead_us = 3.0;
  auto std_free = harness::run_config(net::StackKind::kTcpIp,
                                      code::StackConfig::Std(),
                                      code::StackConfig::Std());
  auto std_paid = harness::run_config(net::StackKind::kTcpIp,
                                      code::StackConfig::Std(),
                                      code::StackConfig::Std(), params);
  EXPECT_NEAR(std_free.te_us, std_paid.te_us, 1e-6);

  auto pin_free = harness::run_config(net::StackKind::kTcpIp,
                                      code::StackConfig::Pin(),
                                      code::StackConfig::Pin());
  auto pin_paid = harness::run_config(net::StackKind::kTcpIp,
                                      code::StackConfig::Pin(),
                                      code::StackConfig::Pin(), params);
  EXPECT_NEAR(pin_paid.te_us - pin_free.te_us, 6.0, 1e-6);  // both sides
}

}  // namespace
}  // namespace l96
