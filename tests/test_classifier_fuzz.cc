// Differential fuzz: the tuple-space engine must reproduce the linear
// scan's classification decision on every frame, for every rule set.
//
// The linear scan is the specification — first registered full match wins.
// The tuple engine reorganizes the same rules into per-signature hash
// tables, so any bug in signature packing, bucket hashing, priority-ordered
// probing, or candidate verification shows up as a decision mismatch on
// *some* frame.  These tests hammer the equivalence with seeded random rule
// sets (overlapping masks, shared and private signatures, shadowed
// priorities) and adversarial frames (mutants of matching frames,
// truncations through every rule boundary, pure noise).
//
// Only the decision (path_id) is compared, not rules_examined: a frame
// that fully matches a later path whose tuple has better priority
// legitimately pays that path's rules under the tuple engine even though
// the linear scan stopped at the earlier match (see code/classifier.h).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "code/classifier.h"
#include "harness/classify.h"
#include "protocols/rulegen.h"

namespace l96 {
namespace {

// Local deterministic stream (xorshift64*), independent of libc rand.
struct Rng {
  std::uint64_t s;
  explicit Rng(std::uint64_t seed) : s(seed ? seed : 1) {}
  std::uint64_t next() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545F4914F6CDD1DULL;
  }
  std::uint32_t below(std::uint32_t n) {
    return static_cast<std::uint32_t>(next() % n);
  }
};

// A random rule set over a small field universe so masks overlap and many
// paths share signatures, with a sprinkle of private-signature paths.
code::PacketClassifier random_classifier(Rng& rng, std::size_t paths) {
  static constexpr struct {
    std::uint16_t offset;
    std::uint8_t size;
  } kFields[] = {{0, 1}, {1, 2}, {4, 4}, {9, 1}, {12, 2}};
  static constexpr std::uint32_t kMasks1[] = {0xFF, 0xF0, 0x0F, 0x81};
  static constexpr std::uint32_t kMasks2[] = {0xFFFF, 0xFF00, 0x00FF, 0x0FF0};
  static constexpr std::uint32_t kMasks4[] = {0xFFFFFFFFu, 0xFFFF0000u,
                                              0x00FF00FFu, 0x000000FFu};
  code::PacketClassifier c;
  for (std::size_t p = 0; p < paths; ++p) {
    std::vector<code::ClassifierRule> rules;
    const std::size_t nrules = 1 + rng.below(3);
    for (std::size_t r = 0; r < nrules; ++r) {
      const auto& fld = kFields[rng.below(std::size(kFields))];
      std::uint32_t mask = 0;
      switch (fld.size) {
        case 1: mask = kMasks1[rng.below(4)]; break;
        case 2: mask = kMasks2[rng.below(4)]; break;
        default: mask = kMasks4[rng.below(4)]; break;
      }
      rules.push_back({.offset = fld.offset,
                       .size = fld.size,
                       .mask = mask,
                       .value = static_cast<std::uint32_t>(rng.next()) & mask});
    }
    c.add_path("fuzz_" + std::to_string(p), static_cast<int>(p + 1),
               std::move(rules));
  }
  return c;
}

std::vector<std::uint8_t> random_frame(Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> f(len);
  for (auto& b : f) b = static_cast<std::uint8_t>(rng.next());
  return f;
}

void expect_engines_agree(const code::PacketClassifier& c,
                          const std::vector<std::uint8_t>& f,
                          const char* what) {
  const auto lin = c.classify_scan_linear(f);
  const auto tup = c.classify_scan_tuple(f);
  ASSERT_EQ(lin.path_id, tup.path_id)
      << what << ": linear says "
      << (lin.path_id ? std::to_string(*lin.path_id) : "nomatch")
      << ", tuple says "
      << (tup.path_id ? std::to_string(*tup.path_id) : "nomatch")
      << " on a " << f.size() << "-byte frame";
  // classify_scan() must agree with whichever engine is active.
  EXPECT_EQ(c.classify_scan(f).path_id, lin.path_id);
}

TEST(ClassifierFuzz, RandomRuleSetsRandomFrames) {
  Rng rng(0xC1A551F1E5ULL);
  for (int set = 0; set < 12; ++set) {
    const std::size_t paths = 4 + rng.below(60);
    const auto c = random_classifier(rng, paths);
    for (int i = 0; i < 150; ++i) {
      // Short frames stress the out-of-bounds rejection: lengths from 0
      // through just past the largest field extent (offset 12 + size 2).
      const std::size_t len = rng.below(18);
      expect_engines_agree(c, random_frame(rng, len), "random");
    }
  }
}

TEST(ClassifierFuzz, ScaledRuleSetsMutantFrames) {
  // Generated production-scale sets, probed with single-byte mutants of
  // the canonical matching frame — each mutant flips exactly one byte, so
  // it exercises near-miss verification (partial template matches) where
  // the two engines are most likely to diverge.
  for (const auto kind :
       {proto::RuleSetKind::kTcpIp, proto::RuleSetKind::kRpc}) {
    const auto base = harness::classifier_match_frame(
        kind == proto::RuleSetKind::kTcpIp ? net::StackKind::kTcpIp
                                           : net::StackKind::kRpc);
    for (const std::size_t decoys : {8u, 64u, 512u}) {
      Rng rng(0xBEEF0000ULL + decoys + (kind == proto::RuleSetKind::kRpc));
      const auto c = proto::build_scaled_classifier(kind, decoys, 1);
      expect_engines_agree(c, base, "canonical match");
      expect_engines_agree(c, harness::classifier_nomatch_frame(),
                           "canonical nomatch");
      for (int i = 0; i < 200; ++i) {
        auto f = base;
        f[rng.below(static_cast<std::uint32_t>(f.size()))] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
        expect_engines_agree(c, f, "mutant");
      }
      // Truncations through every length, including mid-field cuts.
      for (std::size_t len = 0; len <= base.size(); ++len) {
        expect_engines_agree(
            c, std::vector<std::uint8_t>(base.begin(), base.begin() + len),
            "truncation");
      }
    }
  }
}

TEST(ClassifierFuzz, ShadowedPrioritiesAgree) {
  // Rule sets where broad masks shadow narrow ones and vice versa, in both
  // registration orders: first-registered-wins must hold under both
  // engines even when several paths fully match the same frame.
  Rng rng(0x5AD0ED);
  for (int trial = 0; trial < 40; ++trial) {
    code::PacketClassifier c;
    const std::uint8_t v = static_cast<std::uint8_t>(rng.next());
    // Three layers matching overlapping value sets at the same offset,
    // registered in a random order.
    struct Layer {
      std::uint32_t mask;
      const char* name;
    } layers[] = {{0xFF, "exact"}, {0xF0, "high"}, {0x0F, "low"}};
    int order[3] = {0, 1, 2};
    for (int i = 2; i > 0; --i) std::swap(order[i], order[rng.below(i + 1)]);
    for (int i = 0; i < 3; ++i) {
      const auto& l = layers[order[i]];
      c.add_path(l.name, i + 1,
                 {{.offset = 0, .size = 1, .mask = l.mask,
                   .value = v & l.mask}});
    }
    for (int i = 0; i < 64; ++i) {
      expect_engines_agree(c, random_frame(rng, 1 + rng.below(3)),
                           "shadowed");
    }
    expect_engines_agree(c, {v}, "shadowed-exact");
  }
}

TEST(ClassifierFuzz, DecisionsAreDeterministic) {
  // Same seed, two independently built classifiers and frame streams:
  // identical decisions and identical work counters.
  for (int round = 0; round < 2; ++round) {
    Rng ra(42), rb(42);
    const auto ca = random_classifier(ra, 48);
    const auto cb = random_classifier(rb, 48);
    for (int i = 0; i < 100; ++i) {
      const auto fa = random_frame(ra, 16);
      const auto fb = random_frame(rb, 16);
      ASSERT_EQ(fa, fb);
      const auto sa = ca.classify_scan_tuple(fa);
      const auto sb = cb.classify_scan_tuple(fb);
      EXPECT_EQ(sa.path_id, sb.path_id);
      EXPECT_EQ(sa.rules_examined, sb.rules_examined);
      EXPECT_EQ(sa.tuples_probed, sb.tuples_probed);
      EXPECT_EQ(sa.candidates_verified, sb.candidates_verified);
    }
  }
}

}  // namespace
}  // namespace l96
