// Tests for TCP's persist state: zero-window stall, periodic window probes,
// and resumption when the window reopens.
#include <gtest/gtest.h>

#include "net/world.h"

namespace l96 {
namespace {

class PersistSink final : public proto::TcpUpper {
 public:
  void tcp_receive(proto::TcpConn&, xk::Message& m) override {
    received += m.length();
  }
  std::uint64_t received = 0;
};

class PersistSource final : public proto::TcpUpper {
 public:
  void tcp_established(proto::TcpConn& c) override { established = &c; }
  void tcp_receive(proto::TcpConn&, xk::Message&) override {}
  proto::TcpConn* established = nullptr;
};

class TcpPersist : public ::testing::Test {
 protected:
  TcpPersist()
      : world(net::StackKind::kTcpIp, code::StackConfig::Std(),
              code::StackConfig::Std()) {
    world.server().tcp()->listen(9100, &sink);
    conn = world.client().tcp()->connect(world.server().address().ip, 9101,
                                         9100, &source);
    world.events().advance_by(2'000'000);
  }

  net::World world;
  PersistSink sink;
  PersistSource source;
  proto::TcpConn* conn = nullptr;
};

TEST_F(TcpPersist, ZeroWindowBlocksTransmission) {
  ASSERT_EQ(conn->state(), proto::TcpState::kEstablished);
  // Drain one exchange so the client learns the server's window, then
  // clamp the server's advertised window to zero.
  std::vector<std::uint8_t> byte(1, 0xAB);
  conn->send(byte);
  world.events().advance_by(2'000'000);
  ASSERT_EQ(sink.received, 1u);

  world.server().tcp()->set_receive_window_override(0);
  // Force an advertisement of the zero window: the next data exchange's ACK
  // carries it.
  conn->send(byte);
  world.events().advance_by(2'000'000);

  // Now the client believes the window is closed: new data must wait.
  const auto received_before = sink.received;
  std::vector<std::uint8_t> blocked(64, 0xCD);
  conn->send(blocked);
  world.events().advance_by(400'000);  // less than a persist interval burst
  EXPECT_LE(sink.received, received_before + 1);  // at most probe bytes
}

TEST_F(TcpPersist, ProbesAreSentWhileWindowClosed) {
  std::vector<std::uint8_t> byte(1, 1);
  conn->send(byte);
  world.events().advance_by(2'000'000);
  world.server().tcp()->set_receive_window_override(0);
  conn->send(byte);
  world.events().advance_by(2'000'000);

  conn->send(std::vector<std::uint8_t>(64, 2));
  world.events().advance_by(10'000'000);
  EXPECT_GT(conn->window_probes(), 0u);
}

TEST_F(TcpPersist, ReopeningWindowResumesTransfer) {
  std::vector<std::uint8_t> byte(1, 1);
  conn->send(byte);
  world.events().advance_by(2'000'000);
  world.server().tcp()->set_receive_window_override(0);
  conn->send(byte);
  world.events().advance_by(2'000'000);
  const auto base = sink.received;

  conn->send(std::vector<std::uint8_t>(128, 7));
  world.events().advance_by(3'000'000);
  ASSERT_LT(sink.received, base + 128);  // stalled

  // Window reopens: the next probe's ACK advertises it and the transfer
  // completes.
  world.server().tcp()->set_receive_window_override(~0u);
  world.events().advance_by(30'000'000);
  EXPECT_GE(sink.received, base + 128);
}

TEST_F(TcpPersist, PersistDoesNotFireOnOpenWindow) {
  std::vector<std::uint8_t> data(256, 5);
  conn->send(data);
  world.events().advance_by(5'000'000);
  EXPECT_EQ(conn->window_probes(), 0u);
  EXPECT_EQ(sink.received, 256u);
}

}  // namespace
}  // namespace l96
