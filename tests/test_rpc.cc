// RPC stack functional tests: call/reply, at-most-once semantics, BLAST
// fragmentation, BID reboot detection, VCHAN channel management.
#include <gtest/gtest.h>

#include "net/world.h"
#include "protocols/wire_format.h"

namespace l96 {
namespace {

class RpcWorld : public ::testing::Test {
 protected:
  RpcWorld()
      : world(net::StackKind::kRpc, code::StackConfig::Std(),
              code::StackConfig::All()) {}
  net::World world;
};

TEST_F(RpcWorld, CallReplyRoundtrips) {
  world.start(20);
  ASSERT_TRUE(world.run_until_roundtrips(20));
  EXPECT_EQ(world.client().xrpctest()->roundtrips(), 20u);
  EXPECT_TRUE(world.client().xrpctest()->done());
}

TEST_F(RpcWorld, LostRequestRetransmitted) {
  world.start(1000);
  ASSERT_TRUE(world.run_until_roundtrips(3));
  world.wire().drop_next(1);  // next request vanishes
  ASSERT_TRUE(world.run_until_roundtrips(10, 60'000'000));
  EXPECT_GT(world.client().chan()->client_retransmits(), 0u);
}

TEST_F(RpcWorld, LostReplyDoesNotReexecute) {
  // At-most-once: a retransmitted request whose reply was lost is answered
  // from the reply cache, never re-executed.
  std::uint64_t executions = 0;
  world.server().mselect()->register_service(
      42, [&](xk::Message&) {
        ++executions;
        return xk::Message(world.server().arena(), 0, 0);
      });
  // Issue a call to proc 42 through the client's MSELECT.
  std::uint64_t replies = 0;
  auto call42 = [&] {
    xk::Message req(world.client().arena(), 96, 0);
    world.client().mselect()->call(42, req,
                                   [&](xk::Message&) { ++replies; });
  };
  call42();
  world.events().advance_by(2'000'000);
  ASSERT_EQ(executions, 1u);
  ASSERT_EQ(replies, 1u);

  // Now drop the reply of the next call: the request is retransmitted,
  // the server answers from cache.
  world.wire().drop_next(2);  // request's frame reaches server; reply frame
                              // dropped... drop both directions to be sure
  call42();
  world.events().advance_by(5'000'000);
  EXPECT_EQ(replies, 2u);
  EXPECT_LE(executions, 2u);
  EXPECT_GT(world.server().chan()->dup_requests() +
                world.client().chan()->client_retransmits(),
            0u);
}

TEST_F(RpcWorld, UnknownProcedureYieldsEmptyReply) {
  world.start(1);
  ASSERT_TRUE(world.run_until_roundtrips(1));
  std::size_t reply_len = 999;
  xk::Message req(world.client().arena(), 96, 0);
  world.client().mselect()->call(
      777, req, [&](xk::Message& m) { reply_len = m.length(); });
  world.events().advance_by(2'000'000);
  EXPECT_EQ(reply_len, 0u);
  EXPECT_GT(world.server().mselect()->bad_proc_calls(), 0u);
}

TEST_F(RpcWorld, LargePayloadFragmentsAndReassembles) {
  // A 4 KB echo argument must traverse BLAST fragmentation.
  std::vector<std::uint8_t> payload(4096);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 131);
  }
  world.server().mselect()->register_service(7, [&](xk::Message& req) {
    xk::Message reply(world.server().arena(), 0, req.length());
    std::copy(req.view().begin(), req.view().end(), reply.data());
    return reply;
  });
  std::vector<std::uint8_t> echoed;
  xk::Message req(world.client().arena(), 96, payload.size());
  std::copy(payload.begin(), payload.end(), req.data());
  world.client().mselect()->call(7, req, [&](xk::Message& m) {
    echoed.assign(m.view().begin(), m.view().end());
  });
  world.events().advance_by(10'000'000);
  ASSERT_EQ(echoed.size(), payload.size());
  EXPECT_EQ(echoed, payload);
  EXPECT_GT(world.client().blast()->fragments_sent(), 3u);
  EXPECT_GT(world.client().blast()->messages_reassembled(), 0u);
}

TEST_F(RpcWorld, LostFragmentRecoveredByNack) {
  std::vector<std::uint8_t> payload(3000, 0x5A);
  world.server().mselect()->register_service(8, [&](xk::Message& req) {
    xk::Message reply(world.server().arena(), 0, 1);
    reply.data()[0] = static_cast<std::uint8_t>(req.length() & 0xFF);
    return reply;
  });
  bool got_reply = false;
  xk::Message req(world.client().arena(), 96, payload.size());
  std::copy(payload.begin(), payload.end(), req.data());
  world.wire().drop_next(1);  // first fragment of the request vanishes
  world.client().mselect()->call(8, req,
                                 [&](xk::Message&) { got_reply = true; });
  world.events().advance_by(60'000'000);
  EXPECT_TRUE(got_reply);
  EXPECT_GT(world.server().blast()->nacks_sent() +
                world.client().chan()->client_retransmits(),
            0u);
}

TEST_F(RpcWorld, ConcurrentCallsUseDistinctChannels) {
  world.start(1);
  ASSERT_TRUE(world.run_until_roundtrips(1));
  world.server().mselect()->register_service(9, [&](xk::Message& req) {
    xk::Message r(world.server().arena(), 0, req.length());
    return r;
  });
  int replies = 0;
  // Issue several calls back-to-back without waiting.
  for (int i = 0; i < 4; ++i) {
    xk::Message req(world.client().arena(), 96, 1);
    req.data()[0] = static_cast<std::uint8_t>(i);
    world.client().mselect()->call(9, req,
                                   [&](xk::Message&) { ++replies; });
  }
  world.events().advance_by(10'000'000);
  EXPECT_EQ(replies, 4);
  EXPECT_GE(world.client().vchan()->calls(), 4u);
}

TEST_F(RpcWorld, ChannelExhaustionParksCalls) {
  world.start(1);
  ASSERT_TRUE(world.run_until_roundtrips(1));
  world.server().mselect()->register_service(10, [&](xk::Message&) {
    return xk::Message(world.server().arena(), 0, 0);
  });
  const std::size_t nchans = world.client().chan()->nchans();
  int replies = 0;
  // Overcommit: more concurrent calls than channels.
  for (std::size_t i = 0; i < nchans + 3; ++i) {
    xk::Message req(world.client().arena(), 96, 0);
    world.client().mselect()->call(10, req,
                                   [&](xk::Message&) { ++replies; });
  }
  world.events().advance_by(30'000'000);
  EXPECT_EQ(replies, static_cast<int>(nchans + 3));
  EXPECT_GT(world.client().vchan()->waits(), 0u);
}

TEST_F(RpcWorld, BidStampsBootId) {
  world.start(3);
  ASSERT_TRUE(world.run_until_roundtrips(3));
  EXPECT_EQ(world.server().bid()->peer_boot_id(),
            world.client().bid()->boot_id());
  EXPECT_EQ(world.client().bid()->peer_boot_id(),
            world.server().bid()->boot_id());
  EXPECT_EQ(world.client().bid()->reboots_detected(), 0u);
}

TEST_F(RpcWorld, BidDetectsPeerReboot) {
  world.start(2);
  ASSERT_TRUE(world.run_until_roundtrips(2));
  // Craft a frame from the "rebooted" server: new boot id, stale reply.
  std::vector<std::uint8_t> f;
  // ETH header.
  const auto& cmac = world.client().address().mac;
  const auto& smac = world.server().address().mac;
  f.insert(f.end(), cmac.begin(), cmac.end());
  f.insert(f.end(), smac.begin(), smac.end());
  f.push_back(0x88);
  f.push_back(0xB5);
  // BID header with a DIFFERENT boot id.
  std::array<std::uint8_t, proto::Bid::kHeaderBytes> bid{};
  proto::put_be32(bid, 0, 0xCAFE);
  // BLAST single-fragment header (checksum over the first 14 header bytes
  // plus the payload).
  std::array<std::uint8_t, proto::Blast::kHeaderBytes> bh{};
  proto::put_be32(bh, 0, 0xFFFF);  // fresh msg id
  proto::put_be16(bh, 4, 0);
  proto::put_be16(bh, 6, 1);
  proto::put_be32(bh, 8, proto::Bid::kHeaderBytes);
  proto::put_be16(bh, 14,
                  proto::inet_checksum(
                      bid, proto::checksum_accumulate(
                               std::span(bh.data(), 14))));
  f.insert(f.end(), bh.begin(), bh.end());
  f.insert(f.end(), bid.begin(), bid.end());
  f.resize(std::max<std::size_t>(f.size(), 64), 0);

  const auto before = world.client().bid()->reboots_detected();
  world.client().deliver(f);
  EXPECT_EQ(world.client().bid()->reboots_detected(), before + 1);
  EXPECT_EQ(world.client().bid()->peer_boot_id(), 0xCAFEu);
}

TEST_F(RpcWorld, ServerRunsBestConfiguration) {
  // Section 4.2: the RPC server always runs ALL so the reference point
  // stays fixed.
  EXPECT_EQ(world.server().config().name, "ALL");
  EXPECT_EQ(world.client().config().name, "STD");
}

}  // namespace
}  // namespace l96
