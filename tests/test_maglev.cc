// Tests for the Maglev consistent-hash table (net/maglev.h): prime-size
// validation, even population over the alive pool, deterministic
// rebuilds, the minimal-disruption property on single-backend loss, and
// the remap count the failover harness prices.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "net/maglev.h"

namespace l96 {
namespace {

using net::MaglevTable;

TEST(Maglev, PrimalityHelpers) {
  EXPECT_FALSE(MaglevTable::is_prime(0));
  EXPECT_FALSE(MaglevTable::is_prime(1));
  EXPECT_TRUE(MaglevTable::is_prime(2));
  EXPECT_TRUE(MaglevTable::is_prime(251));
  EXPECT_FALSE(MaglevTable::is_prime(252));
  EXPECT_EQ(MaglevTable::next_prime(0), 2u);
  EXPECT_EQ(MaglevTable::next_prime(100), 101u);
  EXPECT_EQ(MaglevTable::next_prime(251), 251u);
  EXPECT_EQ(MaglevTable::next_prime(252), 257u);
}

TEST(Maglev, RejectsBadShapes) {
  EXPECT_THROW(MaglevTable(0), std::invalid_argument);
  EXPECT_THROW(MaglevTable(4, 250), std::invalid_argument);  // not prime
  EXPECT_THROW(MaglevTable(8, 7), std::invalid_argument);    // pool > table
  MaglevTable t(4);
  EXPECT_THROW(t.rebuild(std::vector<bool>(3, true)), std::invalid_argument);
}

TEST(Maglev, PopulatesEveryEntryNearEvenly) {
  const std::size_t n = 8;
  MaglevTable t(n);
  EXPECT_EQ(t.table_size(), MaglevTable::kDefaultTableSize);
  EXPECT_EQ(t.pool_size(), n);
  EXPECT_EQ(t.rebuilds(), 0u);

  std::size_t total = 0;
  for (std::size_t b = 0; b < n; ++b) {
    const std::size_t owned = t.owned_by(b);
    total += owned;
    // Maglev's round-robin population keeps shares within a couple of
    // entries of M/N.
    EXPECT_GE(owned, t.table_size() / n - 2);
    EXPECT_LE(owned, t.table_size() / n + 2);
  }
  EXPECT_EQ(total, t.table_size());  // no entry unowned
  for (int e : t.entries()) {
    ASSERT_GE(e, 0);
    ASSERT_LT(e, static_cast<int>(n));
  }
}

TEST(Maglev, DeterministicAcrossInstances) {
  MaglevTable a(6, 131, /*salt=*/42);
  MaglevTable b(6, 131, /*salt=*/42);
  EXPECT_EQ(a.entries(), b.entries());
  MaglevTable c(6, 131, /*salt=*/43);
  EXPECT_NE(a.entries(), c.entries());  // salt actually feeds the hash
}

TEST(Maglev, SingleRemovalRemapsOnlyAboutOneNth) {
  const std::size_t n = 8;
  MaglevTable t(n);
  const std::vector<int> before = t.entries();
  const std::size_t owned = t.owned_by(3);

  std::vector<bool> alive(n, true);
  alive[3] = false;
  const std::size_t remapped = t.rebuild(alive);
  EXPECT_EQ(t.rebuilds(), 1u);
  EXPECT_EQ(t.pool_size(), n - 1);

  // Every entry the dead backend owned must move...
  EXPECT_GE(remapped, owned);
  // ...and the disruption tail beyond that stays small (Maglev's bound:
  // collisions in the survivors' permutations, well under half the
  // table at M/N >= 30).
  EXPECT_LE(remapped, owned + t.table_size() / 2);
  // Survivors only in the new table.
  for (int e : t.entries()) EXPECT_NE(e, 3);
  // Entries that kept their owner really are byte-identical.
  std::size_t kept = 0;
  for (std::size_t j = 0; j < t.table_size(); ++j) {
    kept += (t.entries()[j] == before[j]) ? 1u : 0u;
  }
  EXPECT_EQ(kept + remapped, t.table_size());
}

TEST(Maglev, RestoreReturnsToTheOriginalTable) {
  const std::size_t n = 5;
  MaglevTable t(n, 131);
  const std::vector<int> original = t.entries();

  std::vector<bool> alive(n, true);
  alive[2] = false;
  const std::size_t lost = t.rebuild(alive);
  alive[2] = true;
  const std::size_t regained = t.rebuild(alive);

  // Population is a pure function of the alive set, so restoring the
  // pool restores the exact original table and the remap counts match.
  EXPECT_EQ(t.entries(), original);
  EXPECT_EQ(lost, regained);
  EXPECT_EQ(t.rebuilds(), 2u);
}

TEST(Maglev, EmptyPoolYieldsNoOwnerAndRecovers) {
  MaglevTable t(3, 31);
  const std::size_t remapped = t.rebuild(std::vector<bool>(3, false));
  EXPECT_EQ(remapped, t.table_size());  // every entry lost its owner
  EXPECT_EQ(t.pool_size(), 0u);
  EXPECT_EQ(t.lookup(12345), -1);

  t.rebuild(std::vector<bool>(3, true));
  EXPECT_EQ(t.pool_size(), 3u);
  EXPECT_GE(t.lookup(12345), 0);
}

TEST(Maglev, LookupIsStableForPinnedHashes) {
  MaglevTable t(8);
  for (std::uint64_t h = 0; h < 64; ++h) {
    const std::uint64_t mixed = MaglevTable::mix64(h);
    const int b = t.lookup(mixed);
    EXPECT_EQ(b, t.entries()[mixed % t.table_size()]);
  }
}

}  // namespace
}  // namespace l96
