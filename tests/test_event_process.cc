// Tests for the event (timer) manager, stack pool and semaphores.
#include <gtest/gtest.h>

#include <vector>

#include "xkernel/event.h"
#include "xkernel/process.h"
#include "xkernel/simalloc.h"

namespace l96::xk {
namespace {

TEST(Event, FiresInTimestampOrder) {
  EventManager em;
  std::vector<int> fired;
  em.schedule_at(30, [&] { fired.push_back(3); });
  em.schedule_at(10, [&] { fired.push_back(1); });
  em.schedule_at(20, [&] { fired.push_back(2); });
  em.advance_to(25);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  em.advance_to(100);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(Event, TieBreakIsScheduleOrder) {
  EventManager em;
  std::vector<int> fired;
  em.schedule_at(10, [&] { fired.push_back(1); });
  em.schedule_at(10, [&] { fired.push_back(2); });
  em.advance_to(10);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(Event, NowAdvancesToFireTime) {
  EventManager em;
  std::uint64_t seen = 0;
  em.schedule_at(42, [&] { seen = em.now(); });
  em.advance_to(100);
  EXPECT_EQ(seen, 42u);
  EXPECT_EQ(em.now(), 100u);
}

TEST(Event, CancelPreventsFiring) {
  EventManager em;
  bool fired = false;
  auto id = em.schedule_in(5, [&] { fired = true; });
  EXPECT_TRUE(em.cancel(id));
  EXPECT_FALSE(em.cancel(id));  // double cancel
  em.advance_by(10);
  EXPECT_FALSE(fired);
}

TEST(Event, HandlerMayScheduleMore) {
  EventManager em;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) em.schedule_in(10, tick);
  };
  em.schedule_in(10, tick);
  em.advance_to(1000);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(em.pending(), 0u);
}

TEST(Event, HandlerMayCancelAnother) {
  EventManager em;
  bool b_fired = false;
  EventManager::EventId b = 0;
  em.schedule_at(10, [&] { em.cancel(b); });
  b = em.schedule_at(20, [&] { b_fired = true; });
  em.advance_to(30);
  EXPECT_FALSE(b_fired);
}

TEST(Event, PastDeadlineClampsToNow) {
  EventManager em;
  em.advance_to(100);
  bool fired = false;
  em.schedule_at(50, [&] { fired = true; });  // in the past
  em.advance_to(100);                         // no time passes
  EXPECT_TRUE(fired);
}

TEST(Event, AdvanceToNext) {
  EventManager em;
  EXPECT_FALSE(em.advance_to_next());
  bool fired = false;
  em.schedule_at(77, [&] { fired = true; });
  EXPECT_TRUE(em.advance_to_next());
  EXPECT_TRUE(fired);
  EXPECT_EQ(em.now(), 77u);
}

// --- StackPool -----------------------------------------------------------

TEST(Event, CancelAfterFireReturnsFalse) {
  EventManager em;
  int fired = 0;
  const auto id = em.schedule_at(10, [&] { ++fired; });
  em.advance_to(20);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(em.cancel(id));  // cancel-after-fire: "not pending", no abort
  EXPECT_FALSE(em.cancel(id));  // and idempotent
}

TEST(Event, ForeignIdIsACallerBug) {
  EventManager em;
  em.schedule_at(10, [] {});
  // kInvalid and never-issued ids trip the debug assert; release reports
  // "not pending".
  EXPECT_DEBUG_DEATH(em.cancel(EventManager::kInvalid), "foreign event id");
  EXPECT_DEBUG_DEATH(em.cancel(999), "foreign event id");
}

TEST(Event, PurgeOwnerDropsWithoutFiring) {
  EventManager em;
  int infra = 0;
  int host = 0;
  em.schedule_at(10, [&] { ++infra; }, EventManager::kInfraOwner);
  const auto a = em.schedule_at(10, [&] { ++host; }, 7);
  em.schedule_at(20, [&] { ++host; }, 7);
  EXPECT_EQ(em.pending_for(7), 2u);
  EXPECT_EQ(em.purge_owner(7), 2u);
  EXPECT_EQ(em.pending_for(7), 0u);
  em.advance_to(100);
  EXPECT_EQ(infra, 1);  // other owners untouched
  EXPECT_EQ(host, 0);   // purged events never fire
  EXPECT_FALSE(em.cancel(a));  // cancel-after-purge: "not pending"
  EXPECT_EQ(em.purge_owner(7), 0u);  // purge is idempotent
}

TEST(Event, PortTagsItsOwner) {
  EventManager em;
  EventPort port(em, 3);
  int fired = 0;
  port.schedule_in(5, [&] { ++fired; });
  port.schedule_at(7, [&] { ++fired; });
  EXPECT_EQ(em.pending_for(3), 2u);
  EXPECT_EQ(em.purge_owner(3), 2u);
  em.advance_to(100);
  EXPECT_EQ(fired, 0);
}

TEST(StackPool, LifoReuse) {
  SimAlloc arena;
  StackPool pool(arena, 4, 4096);
  const SimAddr s1 = pool.attach();
  pool.detach(s1);
  const SimAddr s2 = pool.attach();
  EXPECT_EQ(s1, s2);  // most recently detached comes back first
  EXPECT_EQ(pool.warm_attaches(), 2u);  // initial top counts as warm too
}

TEST(StackPool, ColdAttachAfterDifferentStack) {
  SimAlloc arena;
  StackPool pool(arena, 4, 4096);
  const SimAddr a = pool.attach();
  const SimAddr b = pool.attach();
  EXPECT_NE(a, b);
  pool.detach(a);
  pool.detach(b);
  EXPECT_EQ(pool.attach(), b);
}

TEST(StackPool, Exhaustion) {
  SimAlloc arena;
  StackPool pool(arena, 1, 1024);
  (void)pool.attach();
  EXPECT_THROW(pool.attach(), std::runtime_error);
}

// --- Semaphore -----------------------------------------------------------

TEST(Semaphore, ImmediateWhenAvailable) {
  Semaphore s(1);
  bool ran = false;
  s.p([&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.count(), 0);
}

TEST(Semaphore, ParksWhenUnavailable) {
  Semaphore s(0);
  bool ran = false;
  s.p([&] { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.waiters(), 1u);
  s.v();  // direct handoff
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.count(), 0);
}

TEST(Semaphore, VWithoutWaitersIncrements) {
  Semaphore s(0);
  s.v();
  EXPECT_EQ(s.count(), 1);
  bool ran = false;
  s.p([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(Semaphore, FifoHandoff) {
  Semaphore s(0);
  std::vector<int> order;
  s.p([&] { order.push_back(1); });
  s.p([&] { order.push_back(2); });
  s.v();
  s.v();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// --- SimAlloc ----------------------------------------------------------

TEST(SimAlloc, DeterministicSequence) {
  SimAlloc a1, a2;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a1.alloc(32 + i), a2.alloc(32 + i));
  }
}

TEST(SimAlloc, ReusesFreedChunks) {
  SimAlloc a;
  const SimAddr p = a.alloc(64);
  a.free(p, 64);
  EXPECT_EQ(a.alloc(64), p);
}

TEST(SimAlloc, AlignmentHonored) {
  SimAlloc a;
  a.alloc(3);
  const SimAddr p = a.alloc(64, 64);
  EXPECT_EQ(p % 64, 0u);
}

TEST(SimAlloc, SizeClassesSeparate) {
  SimAlloc a;
  const SimAddr small = a.alloc(16);
  a.free(small, 16);
  const SimAddr big = a.alloc(256);  // must not reuse the 16-byte chunk
  EXPECT_NE(big, small);
}

TEST(SimAlloc, Accounting) {
  SimAlloc a;
  const SimAddr p = a.alloc(100);
  EXPECT_EQ(a.alloc_count(), 1u);
  EXPECT_GT(a.live_bytes(), 0u);
  a.free(p, 100);
  EXPECT_EQ(a.free_count(), 1u);
  EXPECT_EQ(a.live_bytes(), 0u);
}

}  // namespace
}  // namespace l96::xk
