// Unit and property tests for the direct-mapped cache model.
#include <gtest/gtest.h>

#include <random>
#include <unordered_map>

#include "sim/cache.h"

namespace l96::sim {
namespace {

DirectMappedCache make_cache(std::uint32_t size = 8 * 1024,
                             WritePolicy wp = WritePolicy::kWriteThrough) {
  return DirectMappedCache(DirectMappedCache::Config{
      .name = "t", .size_bytes = size, .block_bytes = 32, .write_policy = wp});
}

TEST(Cache, GeometryValidation) {
  EXPECT_THROW(make_cache(3000), std::invalid_argument);
  EXPECT_NO_THROW(make_cache(4096));
  DirectMappedCache::Config bad;
  bad.block_bytes = 0;
  EXPECT_THROW(DirectMappedCache c(bad), std::invalid_argument);
  DirectMappedCache::Config small;
  small.size_bytes = 16;
  small.block_bytes = 32;
  EXPECT_THROW(DirectMappedCache c(small), std::invalid_argument);
}

TEST(Cache, NumLines) {
  auto c = make_cache(8 * 1024);
  EXPECT_EQ(c.num_lines(), 256u);
  EXPECT_EQ(c.block_bytes(), 32u);
}

TEST(Cache, ColdMissThenHit) {
  auto c = make_cache();
  auto r = c.read(0x1000);
  EXPECT_FALSE(r.hit);
  EXPECT_FALSE(r.replacement_miss);
  r = c.read(0x1004);  // same block
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(c.stats().accesses, 2u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, ReplacementMissClassification) {
  auto c = make_cache(8 * 1024);
  c.read(0x0000);            // cold
  c.read(0x0000 + 8 * 1024); // aliases line 0: cold (never seen)
  auto r = c.read(0x0000);   // evicted earlier, seen before: replacement
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.replacement_miss);
  EXPECT_EQ(c.stats().repl_misses, 1u);
  EXPECT_EQ(c.stats().cold_misses(), 2u);
}

TEST(Cache, DirectMappedConflict) {
  auto c = make_cache(4096);
  // Two addresses 4096 apart share a line.
  EXPECT_EQ(c.line_index(0x100), c.line_index(0x100 + 4096));
  c.read(0x100);
  c.read(0x100 + 4096);
  EXPECT_FALSE(c.contains(0x100));
  EXPECT_TRUE(c.contains(0x100 + 4096));
}

TEST(Cache, WriteThroughNoAllocateOnWriteMiss) {
  auto c = make_cache();
  auto r = c.write(0x2000);
  EXPECT_FALSE(r.hit);
  EXPECT_FALSE(c.contains(0x2000));  // no allocation
  // A later read miss on it is COLD, not replacement.
  r = c.read(0x2000);
  EXPECT_FALSE(r.hit);
  EXPECT_FALSE(r.replacement_miss);
}

TEST(Cache, WriteThroughWriteHitKeepsLine) {
  auto c = make_cache();
  c.read(0x2000);
  auto r = c.write(0x2010);
  EXPECT_TRUE(r.hit);
  EXPECT_TRUE(c.contains(0x2000));
}

TEST(Cache, WriteBackAllocatesAndDirties) {
  auto c = make_cache(4096, WritePolicy::kWriteBack);
  auto r = c.write(0x300);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(c.contains(0x300));
  // Evicting the dirty line produces a writeback.
  r = c.read(0x300 + 4096);
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.evicted_block, 0x300u - 0x300 % 32);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionNoWriteback) {
  auto c = make_cache(4096, WritePolicy::kWriteBack);
  c.read(0x300);
  auto r = c.read(0x300 + 4096);
  EXPECT_FALSE(r.writeback);
}

TEST(Cache, InstallDoesNotTouchStats) {
  auto c = make_cache();
  c.install(0x4000);
  EXPECT_EQ(c.stats().accesses, 0u);
  EXPECT_TRUE(c.contains(0x4000));
  // But it marks the block seen: a miss after eviction is replacement.
  c.read(0x4000 + 8 * 1024);
  auto r = c.read(0x4000);
  EXPECT_TRUE(r.replacement_miss);
}

TEST(Cache, ProbeCountsButDoesNotAllocate) {
  auto c = make_cache();
  EXPECT_FALSE(c.probe(0x5000));
  EXPECT_EQ(c.stats().accesses, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_FALSE(c.contains(0x5000));
  c.read(0x5000);
  EXPECT_TRUE(c.probe(0x5000));
}

TEST(Cache, FlushKeepsHistoryResetForgets) {
  auto c = make_cache();
  c.read(0x100);
  c.flush();
  EXPECT_FALSE(c.contains(0x100));
  auto r = c.read(0x100);
  EXPECT_TRUE(r.replacement_miss);  // history survived the flush

  c.reset();
  r = c.read(0x100);
  EXPECT_FALSE(r.replacement_miss);  // history gone
  EXPECT_EQ(c.stats().accesses, 1u);
}

TEST(Cache, ResetColdVersusResetStats) {
  // reset_cold() (Table 6 start state) forgets residency, history and
  // stats; reset_stats() (Table 7: between warm-up and the measured pass)
  // zeroes counters ONLY, so residency survives and post-reset misses on
  // previously-seen blocks still classify as replacement misses.
  auto c = make_cache();
  c.read(0x100);
  c.read(0x200);
  c.invalidate(0x200);

  c.reset_stats();
  EXPECT_EQ(c.stats().accesses, 0u);
  EXPECT_EQ(c.stats().misses, 0u);
  EXPECT_TRUE(c.contains(0x100));          // residency kept
  auto r = c.read(0x100);
  EXPECT_TRUE(r.hit);
  r = c.read(0x200);
  EXPECT_TRUE(r.replacement_miss);         // ever-seen history kept
  EXPECT_EQ(c.stats().repl_misses, 1u);

  c.reset_cold();
  EXPECT_EQ(c.stats().accesses, 0u);
  EXPECT_FALSE(c.contains(0x100));         // residency gone
  r = c.read(0x200);
  EXPECT_FALSE(r.replacement_miss);        // history gone: cold miss again
  EXPECT_EQ(c.stats().cold_misses(), 1u);
}

TEST(Cache, EvictionReportsVictimBlock) {
  // The profiler's conflict matrix depends on the access result naming any
  // displaced block, whether or not the miss was a replacement miss.
  auto c = make_cache();
  c.read(0x100);
  auto r = c.read(0x100 + 8 * 1024);  // same set, different block
  EXPECT_FALSE(r.hit);
  EXPECT_FALSE(r.replacement_miss);   // never seen before -> cold miss
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_block, 0x100u & ~31ull);
  // A miss into an empty line displaces nothing.
  r = c.read(0x4000);
  EXPECT_FALSE(r.evicted);
}

TEST(Cache, InvalidateLine) {
  auto c = make_cache();
  c.read(0x100);
  c.invalidate_line(c.line_index(0x100));
  EXPECT_FALSE(c.contains(0x100));
  c.read(0x200);
  c.invalidate(0x200);
  EXPECT_FALSE(c.contains(0x200));
  // Invalidating an address whose line holds a different block is a no-op.
  c.read(0x300);
  c.invalidate(0x300 + 8 * 1024);
  EXPECT_TRUE(c.contains(0x300));
}

// Property: against a reference model, hit/miss decisions agree for random
// address streams, and the stats identities hold.
class CacheProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CacheProperty, MatchesReferenceModel) {
  const std::uint32_t size = GetParam();
  auto c = make_cache(size);
  const std::uint32_t lines = size / 32;

  std::unordered_map<std::uint32_t, Addr> ref(lines);
  std::mt19937_64 rng(42 + size);

  for (int i = 0; i < 20000; ++i) {
    const Addr a = (rng() % (1 << 20)) & ~0x3ull;
    const Addr block = a / 32 * 32;
    const std::uint32_t line = static_cast<std::uint32_t>((a / 32) % lines);
    const bool expect_hit = ref.contains(line) && ref[line] == block;
    const auto r = c.read(a);
    ASSERT_EQ(r.hit, expect_hit) << "address " << a << " iteration " << i;
    ref[line] = block;
  }
  const auto& s = c.stats();
  EXPECT_EQ(s.accesses, 20000u);
  EXPECT_EQ(s.hits() + s.misses, s.accesses);
  EXPECT_EQ(s.cold_misses() + s.repl_misses, s.misses);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheProperty,
                         ::testing::Values(1024u, 4096u, 8192u, 65536u));

// Property: repl misses never exceed total misses minus distinct blocks' first
// touches.
TEST(CacheProperty, ColdMissesEqualDistinctBlocks) {
  auto c = make_cache(1024);
  std::mt19937_64 rng(7);
  std::unordered_set<Addr> distinct;
  for (int i = 0; i < 5000; ++i) {
    const Addr a = (rng() % (1 << 16)) & ~0x3ull;
    distinct.insert(a / 32);
    c.read(a);
  }
  EXPECT_EQ(c.stats().cold_misses(), distinct.size());
}

}  // namespace
}  // namespace l96::sim
