// Integration tests over the experiment harness: the paper's qualitative
// results must hold — configuration ordering, technique effects, Table 1
// instruction savings, outlining footprint effects.
#include <gtest/gtest.h>

#include "code/analysis.h"
#include <algorithm>

#include "harness/experiment.h"

namespace l96 {
namespace {

using code::StackConfig;
using harness::Experiment;
using harness::run_config;

class HarnessTcp : public ::testing::Test {
 protected:
  static harness::ConfigResult result(const StackConfig& cfg) {
    return run_config(net::StackKind::kTcpIp, cfg, cfg);
  }
};

TEST_F(HarnessTcp, ConfigOrderingMatchesTable4) {
  // BAD slowest, ALL fastest; every step in between improves (Table 4).
  const auto bad = result(StackConfig::Bad());
  const auto std_ = result(StackConfig::Std());
  const auto out = result(StackConfig::Out());
  const auto clo = result(StackConfig::Clo());
  const auto pin = result(StackConfig::Pin());
  const auto all = result(StackConfig::All());
  EXPECT_GT(bad.te_us, std_.te_us);
  EXPECT_GT(std_.te_us, out.te_us);
  EXPECT_GT(out.te_us, clo.te_us);
  EXPECT_GT(clo.te_us, pin.te_us);
  EXPECT_GT(pin.te_us, all.te_us);
}

TEST_F(HarnessTcp, BadVsAllMcpiFactorInPaperBand) {
  const auto bad = result(StackConfig::Bad());
  const auto all = result(StackConfig::All());
  const double factor = bad.client.steady.mcpi() / all.client.steady.mcpi();
  // Paper: "a factor of 3.9 for the TCP/IP stack".
  EXPECT_GT(factor, 2.5);
  EXPECT_LT(factor, 7.0);
}

TEST_F(HarnessTcp, StdMcpiExceedsAllByOverThirtyFivePercent) {
  const auto std_ = result(StackConfig::Std());
  const auto all = result(StackConfig::All());
  EXPECT_GT(std_.client.steady.mcpi(), 1.2 * all.client.steady.mcpi());
}

TEST_F(HarnessTcp, PathInliningShrinksTrace) {
  const auto out = result(StackConfig::Out());
  const auto pin = result(StackConfig::Pin());
  EXPECT_LT(pin.client.instructions, out.client.instructions);
}

TEST_F(HarnessTcp, OutliningReducesTakenBranches) {
  const auto std_ = result(StackConfig::Std());
  const auto out = result(StackConfig::Out());
  EXPECT_LT(out.client.steady.taken_branches,
            std_.client.steady.taken_branches);
  EXPECT_LE(out.client.steady.icpi(), std_.client.steady.icpi());
}

TEST_F(HarnessTcp, CloningEliminatesMostReplacementMisses) {
  const auto bad = result(StackConfig::Bad());
  const auto clo = result(StackConfig::Clo());
  const auto all = result(StackConfig::All());
  EXPECT_LT(clo.client.cold.icache.repl_misses,
            bad.client.cold.icache.repl_misses);
  EXPECT_LE(all.client.cold.icache.repl_misses,
            clo.client.cold.icache.repl_misses);
}

TEST_F(HarnessTcp, OnlyBadThrashesBcache) {
  // Table 6: "except for the BAD versions, none of the kernels cause
  // replacement misses in the b-cache."
  const auto bad = result(StackConfig::Bad());
  const auto std_ = result(StackConfig::Std());
  const auto all = result(StackConfig::All());
  EXPECT_GT(bad.client.cold.bcache.repl_misses, 20u);
  EXPECT_LE(std_.client.cold.bcache.repl_misses, 10u);
  EXPECT_LE(all.client.cold.bcache.repl_misses, 10u);
}

TEST_F(HarnessTcp, Table9OutliningFootprint) {
  // Outlining reduces unused i-cache slots and the static mainline size.
  const auto std_ = result(StackConfig::Std());
  const auto out = result(StackConfig::Out());
  EXPECT_LT(out.client.footprint.unused_fraction,
            std_.client.footprint.unused_fraction);
  EXPECT_LT(out.client.static_hot_words, std_.client.static_hot_words);
  // Roughly a quarter to a half of the path outlines (paper: 34%).
  const double outlined =
      1.0 - static_cast<double>(out.client.static_hot_words) /
                static_cast<double>(std_.client.static_hot_words);
  EXPECT_GT(outlined, 0.15);
  EXPECT_LT(outlined, 0.60);
}

TEST_F(HarnessTcp, CriticalPathShorterThanFullTrace) {
  const auto r = result(StackConfig::Std());
  EXPECT_LT(r.client.critical_instructions, r.client.instructions);
  EXPECT_GT(r.client.critical_instructions, r.client.instructions / 2);
  EXPECT_LT(r.client.critical_us, r.client.tp_us);
}

TEST_F(HarnessTcp, EndToEndIncludesControllerOverhead) {
  const auto r = result(StackConfig::Std());
  EXPECT_NEAR(r.te_us - r.te_adjusted, 210.0, 2.0);  // paper subtracts 210us
}

TEST_F(HarnessTcp, TeSamplesVaryLittle) {
  Experiment e(net::StackKind::kTcpIp, StackConfig::Std(),
               StackConfig::Std());
  const auto samples = e.te_samples(5);
  ASSERT_EQ(samples.size(), 5u);
  double mn = samples[0], mx = samples[0];
  for (double s : samples) {
    mn = std::min(mn, s);
    mx = std::max(mx, s);
  }
  EXPECT_LT(mx - mn, 0.1 * mn);  // stable measurement
}

// --- Table 1: Section-2 instruction savings ----------------------------------

std::uint64_t instructions_with(StackConfig cfg) {
  Experiment e(net::StackKind::kTcpIp, cfg, cfg);
  return e.run().client.instructions;
}

TEST(Table1, EveryRiscChangeSavesInstructions) {
  const std::uint64_t improved = instructions_with(StackConfig::Std());

  auto check = [&](auto&& mutate, std::uint64_t lo, std::uint64_t hi,
                   const char* what) {
    StackConfig c = StackConfig::Std();
    mutate(c);
    const std::uint64_t n = instructions_with(c);
    EXPECT_GT(n, improved) << what;
    EXPECT_GE(n - improved, lo) << what;
    EXPECT_LE(n - improved, hi) << what;
  };
  // Paper Table 1 (client path, per roundtrip): savings bands around the
  // reported numbers.
  check([](StackConfig& c) { c.tcb_word_fields = false; }, 200, 480,
        "bytes/shorts -> words (324)");
  check([](StackConfig& c) { c.msg_refresh_shortcut = false; }, 120, 330,
        "message refresh shortcut (208)");
  check([](StackConfig& c) { c.usc_sparse_descriptors = false; }, 100, 260,
        "USC descriptors (171)");
  check([](StackConfig& c) { c.inline_map_cache_test = false; }, 60, 220,
        "inlined map cache test (120)");
  check([](StackConfig& c) { c.careful_inlining = false; }, 60, 220,
        "careful inlining (119)");
  check([](StackConfig& c) { c.avoid_int_division = false; }, 40, 190,
        "avoid integer division (90)");
  check([](StackConfig& c) { c.minor_opts = false; }, 15, 90,
        "other minor changes (39)");
}

TEST(Table1, OriginalVsImprovedTotal) {
  const std::uint64_t improved = instructions_with(StackConfig::Std());
  const std::uint64_t original = instructions_with(StackConfig::Original());
  const std::uint64_t total = original - improved;
  // Paper: 1071 instructions saved in total; ~18% of the original path.
  EXPECT_GT(total, 700u);
  EXPECT_LT(total, 1500u);
  EXPECT_GT(static_cast<double>(total) / static_cast<double>(original), 0.10);
}

// --- RPC-side orderings ---------------------------------------------------

TEST(HarnessRpc, ConfigOrderingHolds) {
  auto run = [](const StackConfig& c) {
    return run_config(net::StackKind::kRpc, c, StackConfig::All());
  };
  const auto bad = run(StackConfig::Bad());
  const auto std_ = run(StackConfig::Std());
  const auto clo = run(StackConfig::Clo());
  const auto all = run(StackConfig::All());
  EXPECT_GT(bad.te_us, std_.te_us);
  EXPECT_GT(std_.te_us, clo.te_us);
  EXPECT_GT(clo.te_us, all.te_us);
}

TEST(HarnessRpc, PathInliningHelpsRpcMoreThanTcp) {
  // Section 4.3: the many-small-function RPC stack gains more from
  // path-inlining (relative instruction count reduction).
  auto rel_gain = [](net::StackKind k) {
    const auto scfg = k == net::StackKind::kRpc ? StackConfig::All()
                                                : StackConfig::Out();
    const auto out = run_config(k, StackConfig::Out(), scfg);
    const auto pin = run_config(k, StackConfig::Pin(), scfg);
    return 1.0 - static_cast<double>(pin.client.instructions) /
                     static_cast<double>(out.client.instructions);
  };
  EXPECT_GT(rel_gain(net::StackKind::kRpc), rel_gain(net::StackKind::kTcpIp));
}

TEST(HarnessRpc, AllIsBestMcpi) {
  auto run = [](const StackConfig& c) {
    return run_config(net::StackKind::kRpc, c, StackConfig::All());
  };
  const auto all = run(StackConfig::All());
  for (const auto& cfg : harness::paper_configs()) {
    if (cfg.name == "ALL") continue;
    EXPECT_GE(run(cfg).client.steady.mcpi(), all.client.steady.mcpi())
        << cfg.name;
  }
}

// --- footprint map (Figure 2 infrastructure) -----------------------------------

TEST(Analysis, FootprintMapShapes) {
  Experiment e(net::StackKind::kTcpIp, StackConfig::Std(),
               StackConfig::Std());
  const auto trace = e.lower_client();
  const std::string map = code::footprint_map(trace);
  // 256 sets, 64 per row -> 4 rows.
  EXPECT_EQ(std::count(map.begin(), map.end(), '\n'), 4);
  EXPECT_NE(map.find('#'), std::string::npos);  // some conflicted sets
}

TEST(Analysis, BadLayoutShowsConcentratedConflicts) {
  Experiment e(net::StackKind::kTcpIp, StackConfig::Bad(),
               StackConfig::Bad());
  const auto bad_trace = e.lower_client(StackConfig::Bad());
  const auto all_map =
      code::footprint_map(e.lower_client(StackConfig::All()));
  const auto bad_map = code::footprint_map(bad_trace);
  const auto conflicts = [](const std::string& m) {
    return std::count(m.begin(), m.end(), '#');
  };
  const auto untouched = [](const std::string& m) {
    return std::count(m.begin(), m.end(), '.');
  };
  // BAD concentrates everything on a few sets: more untouched sets overall.
  EXPECT_GT(untouched(bad_map), untouched(all_map));
  EXPECT_GT(conflicts(bad_map), 0);
}

}  // namespace
}  // namespace l96
