// Tests for the sparse shared memory (USC), LANCE driver, and ETH layer.
#include <gtest/gtest.h>

#include "net/world.h"
#include "protocols/usc.h"
#include "protocols/wire_format.h"

namespace l96 {
namespace {

TEST(SparseRegion, AddressingIsSparse) {
  xk::SimAlloc arena;
  proto::SparseRegion r(arena, 40);
  // Each 16-bit word occupies 4 bytes of host address space.
  EXPECT_EQ(r.sparse_addr(2) - r.sparse_addr(0), 4u);
  EXPECT_EQ(r.sparse_addr(1) - r.sparse_addr(0), 1u);  // odd byte in-word
  EXPECT_EQ(r.dense_bytes(), 40u);
}

TEST(SparseRegion, ReadWrite16) {
  xk::SimAlloc arena;
  proto::SparseRegion r(arena, 20);
  r.write16(4, 0xBEEF);
  EXPECT_EQ(r.read16(4), 0xBEEF);
  EXPECT_EQ(r.read16(6), 0);
}

TEST(Usc, FieldAccessors) {
  xk::SimAlloc arena;
  proto::SparseRegion r(arena, 20);
  proto::usc_write_field(r, 0, proto::DescField::kLength, 64);
  proto::usc_write_field(r, 0, proto::DescField::kFlags,
                         proto::LanceDescriptor::kOwn);
  EXPECT_EQ(proto::usc_read_field(r, 0, proto::DescField::kLength), 64);
  EXPECT_EQ(proto::usc_read_field(r, 0, proto::DescField::kFlags),
            proto::LanceDescriptor::kOwn);
}

TEST(Usc, CopyDisciplineRoundtrips) {
  xk::SimAlloc arena;
  proto::SparseRegion r(arena, 20);
  proto::LanceDescriptor d;
  d.flags = 0x8000;
  d.buffer = 3;
  d.length = 1514;
  d.status = 0x0001;
  d.misc = 0xAA;
  proto::desc_copy_out(r, 10, d);
  const auto back = proto::desc_copy_in(r, 10);
  EXPECT_EQ(back.flags, d.flags);
  EXPECT_EQ(back.buffer, d.buffer);
  EXPECT_EQ(back.length, d.length);
  EXPECT_EQ(back.status, d.status);
  EXPECT_EQ(back.misc, d.misc);
}

TEST(Usc, CopyAndUscSeeSameMemory) {
  xk::SimAlloc arena;
  proto::SparseRegion r(arena, 20);
  proto::usc_write_field(r, 0, proto::DescField::kBuffer, 7);
  EXPECT_EQ(proto::desc_copy_in(r, 0).buffer, 7);
}

// --- LANCE through a two-host world ------------------------------------------

class DriverWorld : public ::testing::Test {
 protected:
  DriverWorld()
      : world(net::StackKind::kTcpIp, code::StackConfig::Std(),
              code::StackConfig::Std()) {}
  net::World world;
};

TEST_F(DriverWorld, FramesArePaddedToMinimum) {
  world.start(4);
  world.run_until_roundtrips(1);
  EXPECT_GT(world.wire().frames_carried(), 0u);
  EXPECT_GT(world.client().lance().tx_frames(), 0u);
  EXPECT_GT(world.client().lance().rx_frames(), 0u);
}

TEST_F(DriverWorld, PoolRecyclesWithShortcut) {
  world.start(8);
  world.run_until_roundtrips(8);
  auto& pool = world.client().lance().pool();
  EXPECT_EQ(pool.available(), proto::Lance::kPoolMessages);
  EXPECT_GT(pool.shortcut_hits(), 0u);
  EXPECT_EQ(pool.slow_refreshes(), 0u);
}

TEST_F(DriverWorld, SlowRefreshWithoutShortcutConfig) {
  auto cfg = code::StackConfig::Std();
  cfg.msg_refresh_shortcut = false;
  net::World w(net::StackKind::kTcpIp, cfg, cfg);
  w.start(4);
  w.run_until_roundtrips(4);
  EXPECT_GT(w.client().lance().pool().slow_refreshes(), 0u);
  EXPECT_EQ(w.client().lance().pool().shortcut_hits(), 0u);
}

TEST_F(DriverWorld, EthFiltersWrongDestination) {
  world.start(2);
  world.run_until_roundtrips(2);
  // Inject a frame addressed to a different MAC.
  std::vector<std::uint8_t> f(64, 0);
  f[5] = 0x99;  // bogus destination
  proto::put_be16(std::span<std::uint8_t>(f), 12, proto::kEtherTypeIp);
  const auto before = world.client().eth().bad_addr_frames();
  world.client().deliver(f);
  EXPECT_EQ(world.client().eth().bad_addr_frames(), before + 1);
}

TEST_F(DriverWorld, EthDropsUnknownEthertype) {
  world.start(2);
  world.run_until_roundtrips(2);
  std::vector<std::uint8_t> f(64, 0xFF);  // broadcast dst
  proto::put_be16(std::span<std::uint8_t>(f), 12, 0x9999);
  const auto before = world.client().eth().bad_type_frames();
  world.client().deliver(f);
  EXPECT_EQ(world.client().eth().bad_type_frames(), before + 1);
}

TEST_F(DriverWorld, WireDropInjection) {
  world.start(1000);
  world.run_until_roundtrips(2);
  const auto dropped_before = world.wire().frames_dropped();
  world.wire().drop_next(1);
  world.run_until_roundtrips(4);
  EXPECT_EQ(world.wire().frames_dropped(), dropped_before + 1);
}

TEST_F(DriverWorld, Figure1StackWiring) {
  // TCPTEST / TCP / IP / VNET+ETH / LANCE (Figure 1, left).
  auto& h = world.client();
  ASSERT_NE(h.tcptest(), nullptr);
  ASSERT_EQ(h.tcptest()->below().size(), 1u);
  EXPECT_EQ(h.tcptest()->below()[0]->name(), "tcp");
  EXPECT_EQ(h.tcp()->below()[0]->name(), "ip");
  EXPECT_EQ(h.ip()->below()[0]->name(), "vnet");
  EXPECT_EQ(h.vnet()->below()[0]->name(), "eth");
  EXPECT_EQ(h.eth().below()[0]->name(), "lance");
}

TEST(RpcWiring, Figure1RpcStack) {
  net::World w(net::StackKind::kRpc, code::StackConfig::Std(),
               code::StackConfig::All());
  auto& h = w.client();
  // XRPCTEST / MSELECT / VCHAN / CHAN / BID / BLAST / ETH / LANCE.
  EXPECT_EQ(h.xrpctest()->below()[0]->name(), "mselect");
  EXPECT_EQ(h.mselect()->below()[0]->name(), "vchan");
  EXPECT_EQ(h.vchan()->below()[0]->name(), "chan");
  EXPECT_EQ(h.chan()->below()[0]->name(), "bid");
  EXPECT_EQ(h.bid()->below()[0]->name(), "blast");
  EXPECT_EQ(h.blast()->below()[0]->name(), "eth");
  EXPECT_EQ(h.eth().below()[0]->name(), "lance");
}

}  // namespace
}  // namespace l96
