// IP-layer tests: header integrity, fragmentation/reassembly properties.
#include <gtest/gtest.h>

#include "net/world.h"

namespace l96 {
namespace {

// Direct access to the client's IP through a world; we send raw IP
// payloads by registering a tiny transport.
class Sink final : public proto::IpUpper {
 public:
  void ip_deliver(const proto::IpInfo& info, xk::Message& m) override {
    last_info = info;
    received.emplace_back(m.view().begin(), m.view().end());
  }
  proto::IpInfo last_info;
  std::vector<std::vector<std::uint8_t>> received;
};

class IpWorld : public ::testing::Test {
 protected:
  IpWorld()
      : world(net::StackKind::kTcpIp, code::StackConfig::Std(),
              code::StackConfig::Std()) {
    world.client().ip()->attach(200, &client_sink);
    world.server().ip()->attach(200, &server_sink);
  }

  void send_from_client(std::vector<std::uint8_t> payload) {
    xk::Message m(world.client().arena(), 64, payload.size());
    std::copy(payload.begin(), payload.end(), m.data());
    world.client().ip()->send(world.server().address().ip, 200, m);
    world.events().advance_by(50'000);
  }

  net::World world;
  Sink client_sink, server_sink;
};

TEST_F(IpWorld, SmallDatagramDelivered) {
  send_from_client({1, 2, 3, 4});
  ASSERT_EQ(server_sink.received.size(), 1u);
  EXPECT_EQ(server_sink.received[0], (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(server_sink.last_info.proto, 200);
  EXPECT_EQ(server_sink.last_info.src, world.client().address().ip);
  EXPECT_EQ(server_sink.last_info.dst, world.server().address().ip);
}

TEST_F(IpWorld, PaddingStrippedFromShortFrames) {
  send_from_client({9});  // frame padded to 64 bytes on the wire
  ASSERT_EQ(server_sink.received.size(), 1u);
  EXPECT_EQ(server_sink.received[0].size(), 1u);
}

class IpFragSweep : public IpWorld,
                    public ::testing::WithParamInterface<std::size_t> {};

TEST_P(IpFragSweep, FragmentationRoundtrips) {
  const std::size_t n = GetParam();
  std::vector<std::uint8_t> payload(n);
  for (std::size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 89 + 7);
  }
  send_from_client(payload);
  world.events().advance_by(1'000'000);
  ASSERT_EQ(server_sink.received.size(), 1u) << "payload size " << n;
  EXPECT_EQ(server_sink.received[0], payload);
  if (n > 1480) {
    EXPECT_GT(world.client().ip()->fragments_sent(), 1u);
    EXPECT_EQ(world.server().ip()->reassemblies(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IpFragSweep,
                         ::testing::Values(1u, 1480u, 1481u, 2960u, 2961u,
                                           5000u, 10000u));

TEST_F(IpWorld, MultipleInterleavedDatagramsDeliveredOnce) {
  send_from_client(std::vector<std::uint8_t>(3000, 0xAA));
  send_from_client(std::vector<std::uint8_t>(3000, 0xBB));
  world.events().advance_by(1'000'000);
  ASSERT_EQ(server_sink.received.size(), 2u);
  EXPECT_EQ(server_sink.received[0][0], 0xAA);
  EXPECT_EQ(server_sink.received[1][0], 0xBB);
}

TEST_F(IpWorld, UnknownProtocolDropped) {
  // Send to protocol 201 which has no upper attached on the server.
  xk::Message m(world.client().arena(), 64, 1);
  world.client().ip()->send(world.server().address().ip, 201, m);
  world.events().advance_by(50'000);
  EXPECT_EQ(server_sink.received.size(), 0u);
  EXPECT_GT(world.server().ip()->no_proto_drops(), 0u);
}

TEST_F(IpWorld, CorruptedHeaderDropped) {
  world.wire().corrupt_next(1);
  send_from_client({1, 2, 3});
  // Either IP header checksum or payload integrity catches it; the datagram
  // must not be delivered intact AND uncounted.
  if (!server_sink.received.empty()) {
    // Corruption hit the payload (no L4 checksum on this raw transport):
    // the bytes must differ.
    EXPECT_NE(server_sink.received[0], (std::vector<std::uint8_t>{1, 2, 3}));
  } else {
    EXPECT_GT(world.server().ip()->bad_checksum_drops(), 0u);
  }
}

TEST_F(IpWorld, VnetRoutesOnlyKnownPrefixes) {
  xk::Message m(world.client().arena(), 64, 1);
  world.client().ip()->send(0xC0A80001 /* 192.168.0.1: no route */, 200, m);
  EXPECT_GT(world.client().vnet()->no_route_drops(), 0u);
}

}  // namespace
}  // namespace l96
