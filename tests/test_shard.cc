// Tests for the sharded multi-core fleet (harness/shard.h): the 1-core
// digest pin against run_fleet, byte-identical results across worker
// counts, steering determinism and conservation, the churn-owner rule,
// the jumbo local-port mode, and the open-loop queueing view.
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "harness/fleet.h"
#include "harness/fleet_internal.h"
#include "harness/shard.h"

namespace l96 {
namespace {

using harness::BurstCostTable;
using harness::FleetSpec;
using harness::ShardedFleetRunner;
using harness::ShardResult;
using harness::ShardSpec;
using harness::SteeringPolicy;

const BurstCostTable& tcp_table() {
  static const BurstCostTable table = harness::measure_burst_costs(
      net::StackKind::kTcpIp, code::StackConfig::All(), 3);
  return table;
}

const BurstCostTable& rpc_table() {
  static const BurstCostTable table = harness::measure_burst_costs(
      net::StackKind::kRpc, code::StackConfig::All(), 3);
  return table;
}

FleetSpec fleet_spec() {
  FleetSpec spec;
  spec.label = "shard-test";
  spec.kind = net::StackKind::kTcpIp;
  spec.config = code::StackConfig::All();
  spec.connections = 12;
  spec.packets = 96;
  spec.batch = 4;
  spec.zipf_s = 1.1;
  spec.seed = 9;
  spec.scheme = code::FlowCacheScheme::kLru;
  spec.cache_capacity = 8;
  spec.churn_every = 24;
  return spec;
}

TEST(SteeringTest, DeterministicAndComplete) {
  const FleetSpec fleet = fleet_spec();
  for (SteeringPolicy p :
       {SteeringPolicy::kFlowHash, SteeringPolicy::kLeastLoaded}) {
    const auto a = harness::steer_flows(fleet, 4, p);
    const auto b = harness::steer_flows(fleet, 4, p);
    EXPECT_EQ(a, b);
    ASSERT_EQ(a.size(), fleet.connections);
    for (std::uint32_t c : a) EXPECT_LT(c, 4u);
  }
  // One core: everything on core 0.
  for (std::uint32_t c :
       harness::steer_flows(fleet, 1, SteeringPolicy::kFlowHash)) {
    EXPECT_EQ(c, 0u);
  }
  EXPECT_THROW(harness::steer_flows(fleet, 0, SteeringPolicy::kFlowHash),
               std::invalid_argument);
}

TEST(SteeringTest, HashSpreadsFlowsAcrossCores) {
  FleetSpec fleet = fleet_spec();
  fleet.connections = 256;
  const auto map =
      harness::steer_flows(fleet, 8, SteeringPolicy::kFlowHash);
  std::vector<std::size_t> per_core(8, 0);
  for (std::uint32_t c : map) ++per_core[c];
  for (std::size_t n : per_core) {
    EXPECT_GT(n, 8u);  // 256/8 = 32 expected; any core starving means a
    EXPECT_LT(n, 96u);  // degenerate hash
  }
}

TEST(SteeringTest, LeastLoadedBalancesZipfLoad) {
  FleetSpec fleet = fleet_spec();
  fleet.connections = 32;
  fleet.packets = 512;
  fleet.zipf_s = 1.3;
  fleet.churn_every = 0;
  const auto schedule = harness::fleet_detail::build_schedule(fleet);
  const auto map =
      harness::steer_flows(fleet, 4, SteeringPolicy::kLeastLoaded);
  std::vector<std::uint64_t> load(4, 0);
  for (const auto& b : schedule) load[map[b.flow]] += b.len;
  const std::uint64_t max_load = *std::max_element(load.begin(), load.end());
  // The hot flow alone is ~30% of the schedule under s=1.3, so the
  // least-loaded bound is its core; no core should exceed ~60%.
  EXPECT_LT(max_load, 512u * 6 / 10);
}

TEST(ShardTest, OneCoreMatchesFlatRunFleetDigest) {
  const FleetSpec fleet = fleet_spec();
  const harness::FleetResult flat = harness::run_fleet(fleet, tcp_table());

  ShardSpec spec;
  spec.fleet = fleet;
  spec.cores = 1;
  const ShardResult sharded = harness::run_sharded_fleet(spec, tcp_table());

  EXPECT_EQ(sharded.sample_digest, flat.sample_digest);
  EXPECT_EQ(sharded.packets_sampled, flat.packets_sampled);
  EXPECT_EQ(sharded.scheduled_sampled, flat.scheduled_sampled);
  EXPECT_EQ(sharded.handshake_sampled, flat.handshake_sampled);
  EXPECT_EQ(sharded.dropped_in_churn, flat.dropped_in_churn);
  EXPECT_EQ(sharded.bursts, flat.bursts);
  EXPECT_EQ(sharded.slow_packets, flat.slow_packets);
  EXPECT_EQ(sharded.churns, flat.churns);
  EXPECT_EQ(sharded.cache.lookups, flat.cache.lookups);
  EXPECT_EQ(sharded.cache.hits, flat.cache.hits);
  EXPECT_EQ(sharded.cache.stale_hits, flat.cache.stale_hits);
  EXPECT_DOUBLE_EQ(sharded.latency.p50, flat.latency.p50);
  EXPECT_DOUBLE_EQ(sharded.latency.p999, flat.latency.p999);
  EXPECT_DOUBLE_EQ(sharded.latency.mean, flat.latency.mean);
  EXPECT_TRUE(sharded.conserved);
  ASSERT_EQ(sharded.cores.size(), 1u);
  EXPECT_EQ(sharded.cores[0].sample_digest, flat.sample_digest);
}

TEST(ShardTest, DigestsIdenticalAcrossWorkerCountsAndRuns) {
  ShardSpec spec;
  spec.fleet = fleet_spec();
  spec.cores = 4;
  spec.arrival_us = 150.0;
  const std::vector<ShardSpec> rows = {spec};

  ShardedFleetRunner one(1), four(4);
  const auto a = one.run(rows, tcp_table());
  const auto b = four.run(rows, tcp_table());
  const auto c = four.run(rows, tcp_table());
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].sample_digest, b[0].sample_digest);
  EXPECT_EQ(b[0].sample_digest, c[0].sample_digest);
  EXPECT_DOUBLE_EQ(a[0].makespan_us, b[0].makespan_us);
  EXPECT_DOUBLE_EQ(a[0].sojourn.p999, b[0].sojourn.p999);
  for (std::size_t core = 0; core < 4; ++core) {
    EXPECT_EQ(a[0].cores[core].sample_digest, b[0].cores[core].sample_digest);
    EXPECT_EQ(a[0].cores[core].packets_sampled,
              b[0].cores[core].packets_sampled);
  }
}

TEST(ShardTest, SteeringConservationAcrossCores) {
  for (SteeringPolicy p :
       {SteeringPolicy::kFlowHash, SteeringPolicy::kLeastLoaded}) {
    ShardSpec spec;
    spec.fleet = fleet_spec();
    spec.cores = 4;
    spec.steering = p;
    const ShardResult r = harness::run_sharded_fleet(spec, tcp_table());
    EXPECT_TRUE(r.conserved);
    EXPECT_EQ(r.scheduled_sampled + r.dropped_in_churn, spec.fleet.packets);

    std::uint64_t scheduled = 0, packets = 0, bursts = 0;
    std::size_t flows = 0;
    for (const auto& c : r.cores) {
      scheduled += c.scheduled_sampled;
      packets += c.packets_sampled;
      bursts += c.bursts;
      flows += c.flows;
    }
    EXPECT_EQ(scheduled, r.scheduled_sampled);
    EXPECT_EQ(packets, r.packets_sampled);
    EXPECT_EQ(bursts, r.bursts);
    EXPECT_EQ(flows, spec.fleet.connections);
  }
}

TEST(ShardTest, ChurnRunsOnFlowZeroOwnerOnly) {
  ShardSpec spec;
  spec.fleet = fleet_spec();
  spec.cores = 4;
  const auto map =
      harness::steer_flows(spec.fleet, spec.cores, spec.steering);
  const ShardResult r = harness::run_sharded_fleet(spec, tcp_table());
  ASSERT_GT(r.churns, 0u);
  for (const auto& c : r.cores) {
    if (c.core == map[0]) {
      EXPECT_EQ(c.churns, r.churns);
    } else {
      EXPECT_EQ(c.churns, 0u);
      EXPECT_EQ(c.handshake_sampled, 0u);
    }
  }
}

TEST(ShardTest, RpcFleetShards) {
  ShardSpec spec;
  spec.fleet = fleet_spec();
  spec.fleet.kind = net::StackKind::kRpc;
  spec.fleet.churn_every = 0;
  spec.cores = 4;
  const ShardResult r = harness::run_sharded_fleet(spec, rpc_table());
  EXPECT_TRUE(r.conserved);
  EXPECT_EQ(r.scheduled_sampled, spec.fleet.packets);
  EXPECT_EQ(r.handshake_sampled, 0u);
}

TEST(ShardTest, QueueModelExposesHotCoreUnderSkew) {
  ShardSpec spec;
  spec.fleet = fleet_spec();
  spec.fleet.connections = 32;
  spec.fleet.packets = 512;
  spec.fleet.zipf_s = 1.4;
  spec.fleet.churn_every = 0;
  spec.cores = 4;
  // Offer aggregate load around the fleet's mean service capacity: the
  // hot flow's core saturates, the rest idle.
  const ShardResult probe = harness::run_sharded_fleet(spec, tcp_table());
  spec.arrival_us = probe.latency.mean / static_cast<double>(spec.cores);
  const ShardResult r = harness::run_sharded_fleet(spec, tcp_table());

  EXPECT_GT(r.makespan_us, 0.0);
  EXPECT_GT(r.throughput_mpps, 0.0);
  const auto& hot = r.cores[r.hot_core];
  EXPECT_GT(hot.utilization, 0.0);
  // The hot core queues; its sojourn tail must exceed its pure service
  // tail, and somebody must have waited.
  EXPECT_GE(hot.sojourn.p999, hot.service.p999);
  EXPECT_GT(hot.max_wait_us, 0.0);
  // Sojourn == service when the queue model is off.
  EXPECT_DOUBLE_EQ(probe.sojourn.p999, probe.latency.p999);
}

TEST(ShardTest, ValidatesSpec) {
  ShardSpec spec;
  spec.fleet = fleet_spec();
  spec.cores = 0;
  EXPECT_THROW(harness::run_sharded_fleet(spec, tcp_table()),
               std::invalid_argument);
  spec.cores = 2;
  spec.arrival_us = -1;
  EXPECT_THROW(harness::run_sharded_fleet(spec, tcp_table()),
               std::invalid_argument);
}

TEST(ShardTest, FlatRunFleetRejectsOverflowingPopulation) {
  FleetSpec fleet = fleet_spec();
  fleet.connections = harness::fleet_detail::kMaxFlowsPerWorld + 1;
  EXPECT_THROW(harness::run_fleet(fleet, tcp_table()), std::invalid_argument);
}

TEST(ShardTest, ShardJsonCarriesSchemaAndRows) {
  ShardSpec spec;
  spec.fleet = fleet_spec();
  spec.cores = 2;
  const ShardResult r = harness::run_sharded_fleet(spec, tcp_table());
  const harness::Json section = harness::shard_json(tcp_table(), {r});
  const std::string dump = section.dump();
  EXPECT_NE(dump.find("\"schema\":\"l96.shard.v1\""), std::string::npos);
  EXPECT_NE(dump.find("\"per_core\""), std::string::npos);
  EXPECT_NE(dump.find("\"steering\":\"hash\""), std::string::npos);
  EXPECT_NE(dump.find("\"conserved\":true"), std::string::npos);
}

}  // namespace
}  // namespace l96
