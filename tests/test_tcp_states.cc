// Deeper TCP state-machine tests: close variants, reconnection, listener
// behaviour, sequence-space arithmetic at wraparound.
#include <gtest/gtest.h>

#include "net/world.h"

namespace l96 {
namespace {

class TcpStates : public ::testing::Test {
 protected:
  TcpStates()
      : world(net::StackKind::kTcpIp, code::StackConfig::Std(),
              code::StackConfig::Std()) {}

  proto::TcpConn* conn() { return world.client().tcptest()->connection(); }

  void establish(std::uint64_t roundtrips = 3) {
    world.start(roundtrips);
    ASSERT_TRUE(world.run_until_roundtrips(roundtrips));
  }

  net::World world;
};

TEST_F(TcpStates, ActiveCloseWalksFinWait) {
  establish();
  auto* c = conn();
  c->close();
  // FIN goes out: FIN_WAIT_1 until the ACK.
  EXPECT_EQ(c->state(), proto::TcpState::kFinWait1);
  world.events().advance_by(2'000'000);
  EXPECT_TRUE(c->state() == proto::TcpState::kFinWait2 ||
              c->state() == proto::TcpState::kTimeWait);
}

TEST_F(TcpStates, PassiveCloseEntersCloseWaitThenLastAck) {
  establish();
  auto* c = conn();
  c->close();
  world.events().advance_by(2'000'000);
  // The server learned about the FIN and sits in CLOSE_WAIT until its app
  // closes too.
  std::size_t close_wait = 0;
  proto::TcpConn* server_conn = nullptr;
  const_cast<xk::Map<proto::TcpConn*>&>(
      world.server().tcp()->connection_map())
      .for_each([&](const xk::MapKey&, proto::TcpConn*& sc) {
        ++close_wait;
        server_conn = sc;
      });
  ASSERT_EQ(close_wait, 1u);
  ASSERT_NE(server_conn, nullptr);
  EXPECT_EQ(server_conn->state(), proto::TcpState::kCloseWait);

  server_conn->close();
  EXPECT_EQ(server_conn->state(), proto::TcpState::kLastAck);
  world.events().advance_by(2'000'000);
  EXPECT_EQ(server_conn->state(), proto::TcpState::kClosed);
}

TEST_F(TcpStates, FinLossRecovered) {
  establish();
  auto* c = conn();
  world.wire().drop_next(1);  // the FIN
  c->close();
  world.events().advance_by(30'000'000);  // let the rexmt timer fire
  EXPECT_TRUE(c->state() == proto::TcpState::kFinWait2 ||
              c->state() == proto::TcpState::kTimeWait)
      << to_string(c->state());
  EXPECT_GT(c->retransmits(), 0u);
}

TEST_F(TcpStates, SecondConnectionAfterClose) {
  establish();
  conn()->close();
  world.events().advance_by(3'000'000);
  // A new connection from a different client port completes and ping-pongs.
  world.client().tcptest()->start(world.server().address().ip, 5002, 5001,
                                  5);
  ASSERT_TRUE(world.run_until(
      [&] { return world.client().tcptest()->roundtrips() >= 5; },
      30'000'000));
}

TEST_F(TcpStates, ListenerAcceptsMultipleConnections) {
  establish(2);
  world.client().tcptest()->start(world.server().address().ip, 5010, 5001,
                                  1);
  world.events().advance_by(5'000'000);
  // Both connections live in the server's demux map.
  EXPECT_EQ(world.server().tcp()->open_connections(), 2u);
}

TEST_F(TcpStates, DuplicateSynGetsSynAckAgain) {
  // Drop the SYN|ACK: the client retransmits its SYN, the server (in
  // SYN_RCVD) answers again, and the connection still establishes.
  world.wire().drop_next(2);  // SYN... and SYN|ACK of the retry path
  world.start(2);
  ASSERT_TRUE(world.run_until_roundtrips(2, 60'000'000));
}

TEST_F(TcpStates, SegmentCountsBalanced) {
  establish(20);
  const auto sent = world.client().tcp()->segments_sent();
  const auto rcvd = world.client().tcp()->segments_received();
  // Clean ping-pong: sends and receives stay close.
  EXPECT_NEAR(static_cast<double>(sent), static_cast<double>(rcvd),
              0.2 * static_cast<double>(sent));
}

TEST_F(TcpStates, StateNamesComplete) {
  using proto::TcpState;
  for (auto s :
       {TcpState::kClosed, TcpState::kListen, TcpState::kSynSent,
        TcpState::kSynRcvd, TcpState::kEstablished, TcpState::kFinWait1,
        TcpState::kFinWait2, TcpState::kCloseWait, TcpState::kClosing,
        TcpState::kLastAck, TcpState::kTimeWait}) {
    EXPECT_STRNE(to_string(s), "?");
  }
}

}  // namespace
}  // namespace l96
