// Tests for trace serialization, the throughput harness, and the wire's
// half-duplex serialization model.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "code/trace_io.h"
#include "harness/throughput.h"
#include "net/world.h"

namespace l96 {
namespace {

TEST(TraceIo, RoundtripsAllEventKinds) {
  code::PathTrace t;
  code::Recorder rec;
  rec.enable(&t);
  rec.call(3);
  rec.block(3, 1);
  rec.load(0x8000'1234, 8);
  rec.store(0x8000'5678, 2);
  rec.marker(code::Marker::kSlowPathBegin);
  rec.marker(code::Marker::kSlowPathEnd);
  rec.ret();

  const std::string text = code::path_trace_to_string(t);
  const code::PathTrace back = code::path_trace_from_string(text);
  ASSERT_EQ(back.events.size(), t.events.size());
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    EXPECT_EQ(back.events[i].kind, t.events[i].kind) << i;
    EXPECT_EQ(back.events[i].fn, t.events[i].fn) << i;
    EXPECT_EQ(back.events[i].block, t.events[i].block) << i;
    EXPECT_EQ(back.events[i].addr, t.events[i].addr) << i;
    EXPECT_EQ(back.events[i].bytes, t.events[i].bytes) << i;
  }
}

TEST(TraceIo, CommentsAndBlankLinesIgnored) {
  const std::string text = "# header\n\nC 5\n# mid\nR\n";
  const auto t = code::path_trace_from_string(text);
  ASSERT_EQ(t.events.size(), 2u);
  EXPECT_EQ(t.events[0].kind, code::EventKind::kCall);
  EXPECT_EQ(t.events[0].fn, 5u);
}

TEST(TraceIo, MalformedInputThrows) {
  EXPECT_THROW(code::path_trace_from_string("X 1 2\n"), std::runtime_error);
  EXPECT_THROW(code::path_trace_from_string("B nonsense\n"),
               std::runtime_error);
}

/// Parse `text`, expecting failure; returns the exception message.
std::string parse_error(const std::string& text) {
  try {
    code::path_trace_from_string(text);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected parse to throw for: " << text;
  return "";
}

TEST(TraceIo, ErrorsNameLineNumberAndToken) {
  const std::string msg = parse_error("C 1\nR\nB 2 bogus\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'bogus'"), std::string::npos) << msg;
}

TEST(TraceIo, MissingOperandThrows) {
  const std::string msg = parse_error("C\n");
  EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("missing"), std::string::npos) << msg;
  EXPECT_THROW(code::path_trace_from_string("B 3\n"), std::runtime_error);
  EXPECT_THROW(code::path_trace_from_string("L 8000\n"), std::runtime_error);
}

TEST(TraceIo, TrailingTokensThrow) {
  const std::string msg = parse_error("R extra\n");
  EXPECT_NE(msg.find("'extra'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("trailing"), std::string::npos) << msg;
  EXPECT_THROW(code::path_trace_from_string("C 1 2\n"), std::runtime_error);
}

TEST(TraceIo, GarbageAndNegativeFieldsThrow) {
  EXPECT_THROW(code::path_trace_from_string("C -1\n"), std::runtime_error);
  EXPECT_THROW(code::path_trace_from_string("C 1x\n"), std::runtime_error);
  EXPECT_THROW(code::path_trace_from_string("L zz 4\n"), std::runtime_error);
  EXPECT_THROW(code::path_trace_from_string("S 8000 -2\n"),
               std::runtime_error);
  // Byte counts are 16-bit in the event record.
  EXPECT_THROW(code::path_trace_from_string("L 8000 70000\n"),
               std::runtime_error);
}

TEST(TraceIo, TruncatedTraceDetectedViaHeaderCount) {
  // A writer header declaring more events than the body contains means the
  // file was cut off mid-transfer.
  const std::string msg =
      parse_error("# latency96 path trace, 3 events\nC 1\nR\n");
  EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
  EXPECT_NE(msg.find("declares 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("contains 2"), std::string::npos) << msg;
  // A matching count parses cleanly, including with CRLF line endings.
  const auto ok = code::path_trace_from_string(
      "# latency96 path trace, 2 events\r\nC 1\r\nR\r\n");
  EXPECT_EQ(ok.events.size(), 2u);
}

TEST(TraceIo, WriterOutputAlwaysSatisfiesReaderValidation) {
  code::PathTrace t;
  code::Recorder rec;
  rec.enable(&t);
  for (int i = 0; i < 10; ++i) {
    rec.call(static_cast<code::FnId>(i));
    rec.load(0x8000'0000 + static_cast<std::uint64_t>(i) * 64, 8);
    rec.ret();
  }
  // Dropping the last line of the writer's output must now be detected.
  std::string text = code::path_trace_to_string(t);
  EXPECT_NO_THROW(code::path_trace_from_string(text));
  text.erase(text.rfind("R\n"));
  EXPECT_THROW(code::path_trace_from_string(text), std::runtime_error);
}

TEST(TraceIo, RegistryNamesAppearAsComments) {
  code::CodeRegistry reg;
  code::Function f;
  f.name = "my_function";
  f.blocks.push_back({"b", code::BlockClass::kMainline, 4, 0, 0, 0, 0});
  reg.add(std::move(f));
  code::PathTrace t;
  const std::string text = code::path_trace_to_string(t, &reg);
  EXPECT_NE(text.find("my_function"), std::string::npos);
}

TEST(TraceIo, MachineTraceDumpHasOneLinePerInstruction) {
  sim::MachineTrace mt;
  mt.push_back({0x1000, sim::InstrClass::kIAlu, 0, false});
  mt.push_back({0x1004, sim::InstrClass::kLoad, 0x8000, false});
  mt.push_back({0x1008, sim::InstrClass::kJump, 0, true});
  std::ostringstream ss;
  code::write_machine_trace(ss, mt);
  const std::string out = ss.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);  // header + 3
  EXPECT_NE(out.find("taken"), std::string::npos);
}

// --- wire serialization ------------------------------------------------------

TEST(WireSerialization, BackToBackFramesQueueOnTheMedium) {
  xk::EventManager events;
  net::Wire wire(events);
  std::vector<std::uint64_t> arrivals;
  wire.connect(1, [&](std::vector<std::uint8_t>) {
    arrivals.push_back(events.now());
  });
  wire.connect(0, [](std::vector<std::uint8_t>) {});
  // Three minimum frames sent at the same instant.
  for (int i = 0; i < 3; ++i) {
    wire.transmit(0, std::vector<std::uint8_t>(64, 0));
  }
  events.advance_by(10'000);
  ASSERT_EQ(arrivals.size(), 3u);
  // Each later frame arrives one serialization time (57.6us) after the
  // previous — not all at once.
  EXPECT_GE(arrivals[1] - arrivals[0], 57u);
  EXPECT_GE(arrivals[2] - arrivals[1], 57u);
}

TEST(WireSerialization, OneWayMatchesPaperConstant) {
  net::WireParams p;
  EXPECT_NEAR(p.one_way_us(64), 105.0, 1.0);  // the paper's measured 105us
  EXPECT_NEAR(p.frame_time_us(64), 57.6, 0.1);
}

// --- throughput harness ------------------------------------------------------

TEST(Throughput, TechniquesDoNotHurtThroughput) {
  // Section 4.1's claim, checked end to end.
  auto std_ = harness::measure_tcp_throughput(code::StackConfig::Std(),
                                              64 * 1024);
  auto all = harness::measure_tcp_throughput(code::StackConfig::All(),
                                             64 * 1024);
  EXPECT_EQ(std_.bytes, 64u * 1024u);
  EXPECT_EQ(all.bytes, 64u * 1024u);
  EXPECT_GE(all.kbytes_per_second, std_.kbytes_per_second);
}

TEST(Throughput, GoodputBelowWireRate) {
  auto r = harness::measure_tcp_throughput(code::StackConfig::All(),
                                           64 * 1024);
  EXPECT_LT(r.kbytes_per_second, 1250.0);  // 10 Mb/s ceiling
  EXPECT_GT(r.kbytes_per_second, 300.0);   // and not absurdly slow
}

TEST(Throughput, RpcLargeCallsComplete) {
  auto r = harness::measure_rpc_throughput(code::StackConfig::All(), 8,
                                           8 * 1024);
  EXPECT_EQ(r.bytes, 8u * 8u * 1024u);
  EXPECT_LT(r.kbytes_per_second, 1250.0);
}

}  // namespace
}  // namespace l96
