// Tests for the extensions beyond the paper's implemented system:
// connection-time cloning specialization, layout ablation invariants,
// and cross-configuration determinism of the whole harness.
#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace l96 {
namespace {

using code::StackConfig;

TEST(ConnectClone, ShrinksTraceOnlyWithCloning) {
  StackConfig base = StackConfig::Clo();
  StackConfig conn = StackConfig::Clo();
  conn.clone_at_connect = true;
  auto r_base =
      harness::run_config(net::StackKind::kTcpIp, base, base);
  auto r_conn =
      harness::run_config(net::StackKind::kTcpIp, conn, conn);
  EXPECT_LT(r_conn.client.instructions, r_base.client.instructions);
  EXPECT_LT(r_conn.client.static_hot_words, r_base.client.static_hot_words);

  // Without cloning the flag is inert.
  StackConfig out = StackConfig::Out();
  StackConfig out_conn = StackConfig::Out();
  out_conn.clone_at_connect = true;
  auto r_out = harness::run_config(net::StackKind::kTcpIp, out, out);
  auto r_out_conn =
      harness::run_config(net::StackKind::kTcpIp, out_conn, out_conn);
  EXPECT_EQ(r_out.client.instructions, r_out_conn.client.instructions);
}

TEST(ConnectClone, ComposesWithPathInlining) {
  StackConfig all = StackConfig::All();
  StackConfig all_conn = StackConfig::All();
  all_conn.clone_at_connect = true;
  auto r_all = harness::run_config(net::StackKind::kTcpIp, all, all);
  auto r_conn =
      harness::run_config(net::StackKind::kTcpIp, all_conn, all_conn);
  EXPECT_LT(r_conn.client.instructions, r_all.client.instructions);
  EXPECT_LE(r_conn.te_us, r_all.te_us + 0.5);
}

TEST(ConnectClone, DoesNotChangeFunctionalBehaviour) {
  StackConfig conn = StackConfig::All();
  conn.clone_at_connect = true;
  net::World w(net::StackKind::kTcpIp, conn, conn);
  w.start(10);
  ASSERT_TRUE(w.run_until_roundtrips(10));
  EXPECT_EQ(w.client_roundtrips(), 10u);
}

TEST(LayoutAblation, PessimalNeverBeatsBipartite) {
  for (auto kind : {net::StackKind::kTcpIp, net::StackKind::kRpc}) {
    const auto scfg = kind == net::StackKind::kRpc
                          ? StackConfig::All()
                          : StackConfig::Clo();
    auto bip =
        harness::run_config(kind, StackConfig::Clo(), scfg);
    auto bad =
        harness::run_config(kind, StackConfig::Bad(), scfg);
    EXPECT_GT(bad.client.tp_us, 1.5 * bip.client.tp_us);
  }
}

TEST(LayoutAblation, RandomBetweenBipartiteAndPessimal) {
  StackConfig rnd = StackConfig::Clo();
  rnd.layout = code::LayoutKind::kRandom;
  auto r_rnd = harness::run_config(net::StackKind::kTcpIp, rnd, rnd);
  auto r_bip = harness::run_config(net::StackKind::kTcpIp,
                                   StackConfig::Clo(), StackConfig::Clo());
  auto r_bad = harness::run_config(net::StackKind::kTcpIp,
                                   StackConfig::Bad(), StackConfig::Bad());
  EXPECT_GE(r_rnd.client.tp_us, r_bip.client.tp_us * 0.98);
  EXPECT_LT(r_rnd.client.tp_us, r_bad.client.tp_us);
}

TEST(LayoutAblation, MicroPositioningReducesReplacementMisses) {
  // The trace-driven optimizer should at least beat the shuffled link order
  // on its own objective (cold replacement misses).
  StackConfig micro = StackConfig::Clo();
  micro.layout = code::LayoutKind::kMicroPosition;
  auto r_micro =
      harness::run_config(net::StackKind::kTcpIp, micro, micro);
  auto r_out = harness::run_config(net::StackKind::kTcpIp,
                                   StackConfig::Out(), StackConfig::Out());
  EXPECT_LE(r_micro.client.cold.icache.repl_misses,
            r_out.client.cold.icache.repl_misses);
}

TEST(Determinism, IdenticalRunsProduceIdenticalResults) {
  auto run = [] {
    return harness::run_config(net::StackKind::kTcpIp, StackConfig::All(),
                               StackConfig::All());
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.client.instructions, b.client.instructions);
  EXPECT_EQ(a.client.steady.cycles(), b.client.steady.cycles());
  EXPECT_EQ(a.client.cold.icache.misses, b.client.cold.icache.misses);
  EXPECT_DOUBLE_EQ(a.te_us, b.te_us);
}

TEST(Determinism, ClientAndServerTracesSimilarLength) {
  harness::Experiment e(net::StackKind::kTcpIp, StackConfig::Std(),
                        StackConfig::Std());
  auto r = e.run();
  // Symmetric ping-pong: both sides do nearly the same work.
  const double ratio = static_cast<double>(r.server.instructions) /
                       static_cast<double>(r.client.instructions);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

}  // namespace
}  // namespace l96
