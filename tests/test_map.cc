// Tests for the map manager: one-entry cache, lazy non-empty-bucket list.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "xkernel/map.h"

namespace l96::xk {
namespace {

MapKey k(std::uint64_t v) { return MapKey{.hi = v * 7919, .lo = v}; }

class MapTest : public ::testing::Test {
 protected:
  SimAlloc arena;
};

TEST_F(MapTest, RejectsNonPowerOfTwo) {
  EXPECT_THROW((Map<int>(arena, 10)), std::invalid_argument);
  EXPECT_THROW((Map<int>(arena, 0)), std::invalid_argument);
}

TEST_F(MapTest, BindResolveUnbind) {
  Map<int> m(arena, 16);
  m.bind(k(1), 100);
  auto v = m.resolve(k(1));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 100);
  EXPECT_FALSE(m.resolve(k(2)).has_value());
  EXPECT_TRUE(m.unbind(k(1)));
  EXPECT_FALSE(m.unbind(k(1)));
  EXPECT_FALSE(m.resolve(k(1)).has_value());
}

TEST_F(MapTest, BindOverwrites) {
  Map<int> m(arena, 16);
  m.bind(k(1), 1);
  m.bind(k(1), 2);
  EXPECT_EQ(*m.resolve(k(1)), 2);
  EXPECT_EQ(m.size(), 1u);
}

TEST_F(MapTest, OneEntryCacheHitsOnRepeat) {
  Map<int> m(arena, 16);
  m.bind(k(1), 1);
  m.bind(k(2), 2);
  m.resolve(k(1));
  const auto hits_before = m.stats().cache_hits;
  m.resolve(k(1));
  m.resolve(k(1));
  EXPECT_EQ(m.stats().cache_hits, hits_before + 2);
}

TEST_F(MapTest, CacheInvalidatedByUnbind) {
  Map<int> m(arena, 16);
  m.bind(k(1), 1);
  m.resolve(k(1));  // caches the entry
  m.unbind(k(1));
  EXPECT_FALSE(m.resolve(k(1)).has_value());  // must not hit a stale cache
}

TEST_F(MapTest, RebindAfterUnbindNeverServesStaleValue) {
  // The dangerous sequence: resolve caches entry E for key K, K is unbound
  // (E freed), K is re-bound to a NEW entry.  The cache must have been
  // cleared at unbind time — a dangling E here would be use-after-free.
  Map<int> m(arena, 16);
  m.bind(k(1), 10);
  ASSERT_EQ(*m.resolve(k(1)), 10);  // cache now points at the entry
  ASSERT_TRUE(m.unbind(k(1)));
  m.bind(k(1), 20);
  auto v = m.resolve(k(1));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 20);
  // And the fresh entry is itself cached now.
  const auto hits = m.stats().cache_hits;
  EXPECT_EQ(*m.resolve(k(1)), 20);
  EXPECT_EQ(m.stats().cache_hits, hits + 1);
}

TEST_F(MapTest, OverwriteBindUpdatesValueSeenThroughCache) {
  // bind() of an existing key overwrites the entry in place; a cached
  // pointer to that entry must observe the new value.
  Map<int> m(arena, 16);
  m.bind(k(1), 1);
  m.resolve(k(1));  // cache points at the entry
  m.bind(k(1), 2);  // in-place overwrite
  auto v = m.resolve(k(1));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 2);
}

TEST_F(MapTest, UnbindOfOtherKeyKeepsCacheValid) {
  Map<int> m(arena, 16);
  m.bind(k(1), 1);
  m.bind(k(2), 2);
  m.resolve(k(1));  // cache -> k(1)'s entry
  ASSERT_TRUE(m.unbind(k(2)));
  const auto hits = m.stats().cache_hits;
  EXPECT_EQ(*m.resolve(k(1)), 1);
  EXPECT_EQ(m.stats().cache_hits, hits + 1);  // still a cache hit
}

TEST_F(MapTest, UnbindRebindChurnNeverGoesStale) {
  // Packet-train pattern with connection churn: repeated resolve/unbind/
  // rebind of the same key must always see the current binding.
  Map<int> m(arena, 16);
  for (int round = 0; round < 100; ++round) {
    m.bind(k(7), round);
    ASSERT_EQ(*m.resolve(k(7)), round) << round;
    ASSERT_EQ(*m.resolve(k(7)), round) << round;  // cached path
    ASSERT_TRUE(m.unbind(k(7)));
    ASSERT_FALSE(m.resolve(k(7)).has_value()) << round;
  }
  EXPECT_EQ(m.size(), 0u);
}

TEST_F(MapTest, CacheDisabled) {
  Map<int> m(arena, 16, /*one_entry_cache=*/false);
  m.bind(k(1), 1);
  m.resolve(k(1));
  m.resolve(k(1));
  EXPECT_EQ(m.stats().cache_hits, 0u);
}

TEST_F(MapTest, TouchedAddressesReported) {
  Map<int> m(arena, 16);
  m.bind(k(1), 1);
  std::vector<SimAddr> touched;
  m.resolve(k(1), &touched);
  EXPECT_FALSE(touched.empty());
  // Second lookup hits the one-entry cache: exactly one probe address.
  touched.clear();
  m.resolve(k(1), &touched);
  EXPECT_EQ(touched.size(), 1u);
}

TEST_F(MapTest, TraversalVisitsAllLive) {
  Map<int> m(arena, 64);
  std::set<std::uint64_t> expect;
  for (std::uint64_t i = 0; i < 20; ++i) {
    m.bind(k(i), static_cast<int>(i));
    expect.insert(i);
  }
  std::set<std::uint64_t> seen;
  m.for_each([&](const MapKey& key, int&) { seen.insert(key.lo); });
  EXPECT_EQ(seen, expect);
}

TEST_F(MapTest, LazyUnlinkCollectsEmptyBuckets) {
  Map<int> m(arena, 64);
  for (std::uint64_t i = 0; i < 16; ++i) m.bind(k(i), 1);
  const std::size_t full_list = m.list_length();
  // Remove most elements: the list does NOT shrink yet (lazy).
  for (std::uint64_t i = 0; i < 14; ++i) m.unbind(k(i));
  EXPECT_EQ(m.list_length(), full_list);
  // Traversal cleans it up.
  m.for_each([](const MapKey&, int&) {});
  EXPECT_LE(m.list_length(), 2u + 1u);
  EXPECT_GT(m.stats().lazy_unlinks, 0u);
}

TEST_F(MapTest, RebindAfterLazyEmptyDoesNotDuplicateListNode) {
  Map<int> m(arena, 16);
  m.bind(k(1), 1);
  m.unbind(k(1));       // bucket empty but still on the list
  m.bind(k(1), 2);      // must not be added twice
  std::size_t visits = 0;
  m.for_each([&](const MapKey&, int&) { ++visits; });
  EXPECT_EQ(visits, 1u);
  m.for_each([&](const MapKey&, int&) {});  // stable after cleanup
  EXPECT_EQ(m.list_length(), 1u);
}

TEST_F(MapTest, TraversalCostTracksOccupancyNotTableSize) {
  // The paper: traversal cost is proportional to the non-empty-bucket list,
  // not the bucket count (the whole point of the lazy list).
  Map<int> big(arena, 1024);
  for (std::uint64_t i = 0; i < 8; ++i) big.bind(k(i), 1);
  big.for_each([](const MapKey&, int&) {});
  const auto walked = big.stats().buckets_walked;
  EXPECT_LE(walked, 8u);  // far fewer than 1024 buckets
}

TEST_F(MapTest, ChainCollisionsResolveCorrectly) {
  Map<int> m(arena, 2);  // force heavy chaining
  for (std::uint64_t i = 0; i < 32; ++i) m.bind(k(i), static_cast<int>(i));
  for (std::uint64_t i = 0; i < 32; ++i) {
    auto v = m.resolve(k(i));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, static_cast<int>(i));
  }
  EXPECT_EQ(m.size(), 32u);
}

// Property test: random operation sequences agree with std::map.
class MapFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MapFuzz, AgreesWithReference) {
  SimAlloc arena;
  Map<int> m(arena, 32);
  std::map<std::uint64_t, int> ref;
  std::uint64_t seed = GetParam();
  auto rnd = [&]() {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };
  for (int step = 0; step < 5000; ++step) {
    const std::uint64_t id = rnd() % 64;
    switch (rnd() % 4) {
      case 0:
        m.bind(k(id), static_cast<int>(id));
        ref[id] = static_cast<int>(id);
        break;
      case 1: {
        const bool a = m.unbind(k(id));
        const bool b = ref.erase(id) > 0;
        ASSERT_EQ(a, b);
        break;
      }
      case 2: {
        auto v = m.resolve(k(id));
        auto it = ref.find(id);
        ASSERT_EQ(v.has_value(), it != ref.end());
        if (v.has_value()) {
          ASSERT_EQ(*v, it->second);
        }
        break;
      }
      case 3: {
        std::size_t n = 0;
        m.for_each([&](const MapKey&, int&) { ++n; });
        ASSERT_EQ(n, ref.size());
        break;
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapFuzz,
                         ::testing::Values(1ull, 42ull, 0xDEADBEEFull,
                                           977ull, 31415926ull));

}  // namespace
}  // namespace l96::xk
