// Tests for the load-balancer tier (net/lb.h): the three-tier LbWorld
// topology, Maglev-pinned flow steering through the conn-track cache,
// drain vs health-failure semantics, empty-pool behavior, chaos-script
// installation against an LbWorld, capture of the traced forwarding
// path, and byte-identical determinism across runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "code/config.h"
#include "harness/runner.h"
#include "net/chaos.h"
#include "net/lb.h"

namespace l96 {
namespace {

using net::LbRebuildCause;
using net::LbWorld;
using net::LbWorldOptions;

code::StackConfig base_cfg() { return code::StackConfig{}; }

LbWorldOptions small_world(std::size_t backends) {
  LbWorldOptions o;
  o.backends = backends;
  return o;
}

/// The backend currently carrying wire traffic (the pinned flow's owner).
int serving_backend(LbWorld& w) {
  int found = -1;
  for (std::size_t i = 0; i < w.backend_count(); ++i) {
    if (w.backend(i).lance().rx_frames() > 0) {
      if (found >= 0) return -2;  // more than one (single-flow tests fail)
      found = static_cast<int>(i);
    }
  }
  return found;
}

TEST(LbWorld, SteersOneFlowToExactlyOneBackend) {
  const code::StackConfig cfg = base_cfg();
  LbWorld w(cfg, cfg, cfg, small_world(4));
  w.start(20);
  ASSERT_TRUE(w.run_until_roundtrips(20));

  // Exactly one backend carried the pinned flow; the LB forwarded every
  // client frame and cut every reply through.
  const int sb = serving_backend(w);
  ASSERT_GE(sb, 0);
  EXPECT_GT(w.lb().forwards(), 20u);
  EXPECT_GT(w.lb().returns_forwarded(), 20u);
  EXPECT_EQ(w.lb().drops_bad_frame(), 0u);
  EXPECT_EQ(w.lb().drops_no_backend(), 0u);
  EXPECT_TRUE(w.lb().rebuilds().empty());

  // One Maglev resolution per flow, not per packet: a single conn-track
  // miss, everything after it a fresh hit.
  const code::FlowCacheStats& st = w.lb().conn_track().stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.stale_hits, 0u);
  EXPECT_EQ(st.hits, st.lookups - 1);
  EXPECT_EQ(w.lb().slow_forwards(), 0u);

  // Health probes ran throughout without perturbing a healthy pool.
  EXPECT_GT(w.lb().health_probes(), w.backend_count());
  EXPECT_EQ(w.lb().pool_size(), 4u);
}

TEST(LbWorld, DrainKeepsPinnedFlowAndStopsNewSteering) {
  const code::StackConfig cfg = base_cfg();
  LbWorld w(cfg, cfg, cfg, small_world(3));
  w.start(1'000'000);
  ASSERT_TRUE(w.run_until_roundtrips(10));
  const int sb = serving_backend(w);
  ASSERT_GE(sb, 0);

  w.lb().drain(static_cast<std::size_t>(sb));

  // The rebuild moved the drained backend's Maglev share away without
  // touching its pinned flows.
  ASSERT_EQ(w.lb().rebuilds().size(), 1u);
  const net::LbRebuild& rb = w.lb().rebuilds().back();
  EXPECT_EQ(rb.cause, LbRebuildCause::kDrain);
  EXPECT_EQ(rb.backend, sb);
  EXPECT_GT(rb.remapped, 0u);
  EXPECT_EQ(rb.invalidated, 0u);
  EXPECT_EQ(rb.pool_size, 2u);
  EXPECT_EQ(w.lb().maglev().owned_by(static_cast<std::size_t>(sb)), 0u);

  // The established connection rides out the drain on the same backend:
  // no stale hits, no slow forwards, roundtrips keep flowing.
  const std::uint64_t before = w.client_roundtrips();
  ASSERT_TRUE(w.run_until_roundtrips(before + 10));
  EXPECT_EQ(serving_backend(w), sb);
  EXPECT_EQ(w.lb().conn_track().stats().stale_hits, 0u);
  EXPECT_EQ(w.lb().slow_forwards(), 0u);

  // Undrain restores the share; still no flow disruption.
  w.lb().undrain(static_cast<std::size_t>(sb));
  ASSERT_EQ(w.lb().rebuilds().size(), 2u);
  EXPECT_EQ(w.lb().rebuilds().back().cause, LbRebuildCause::kUndrain);
  EXPECT_EQ(w.lb().rebuilds().back().pool_size, 3u);
  EXPECT_GT(w.lb().maglev().owned_by(static_cast<std::size_t>(sb)), 0u);
}

TEST(LbWorld, HealthFailureEvictsBackendAndInvalidatesItsFlows) {
  const code::StackConfig cfg = base_cfg();
  LbWorld w(cfg, cfg, cfg, small_world(3));
  w.start(1'000'000);
  ASSERT_TRUE(w.run_until_roundtrips(10));
  const int sb = serving_backend(w);
  ASSERT_GE(sb, 0);

  w.backend(static_cast<std::size_t>(sb)).crash();

  // Probes need fail_threshold consecutive misses: detection lands within
  // (threshold + 1) intervals.
  const auto& hp = w.lb().maglev();
  (void)hp;
  const std::uint64_t deadline_us =
      (w.lb().backend_count() + 4) * 5'000 * 4;
  ASSERT_TRUE(w.run_until(
      [&] { return !w.lb().healthy(static_cast<std::size_t>(sb)); },
      deadline_us));

  ASSERT_FALSE(w.lb().rebuilds().empty());
  const net::LbRebuild& rb = w.lb().rebuilds().back();
  EXPECT_EQ(rb.cause, LbRebuildCause::kHealthDown);
  EXPECT_EQ(rb.backend, sb);
  EXPECT_GE(rb.invalidated, 1u);  // the pinned flow was stranded
  EXPECT_EQ(rb.pool_size, 2u);
  EXPECT_EQ(w.lb().maglev().owned_by(static_cast<std::size_t>(sb)), 0u);

  // Recovery: reboot + probes flip it healthy again and restore shares.
  w.backend(static_cast<std::size_t>(sb)).reboot();
  ASSERT_TRUE(w.run_until(
      [&] { return w.lb().healthy(static_cast<std::size_t>(sb)); },
      deadline_us));
  EXPECT_EQ(w.lb().rebuilds().back().cause, LbRebuildCause::kHealthUp);
  EXPECT_EQ(w.lb().rebuilds().back().pool_size, 3u);
  EXPECT_GT(w.lb().maglev().owned_by(static_cast<std::size_t>(sb)), 0u);
}

TEST(LbWorld, EmptyPoolDropsNewFlowsThenRecovers) {
  const code::StackConfig cfg = base_cfg();
  LbWorld w(cfg, cfg, cfg, small_world(2));
  w.lb().drain(0);
  w.lb().drain(1);
  EXPECT_EQ(w.lb().pool_size(), 0u);
  w.start(5);

  // With no alive backend the SYN resolves to nobody: counted drop, no
  // memoization (the flow must retry, not cache the failure).
  w.run_until([&] { return w.lb().drops_no_backend() >= 1; }, 1'000'000);
  EXPECT_GE(w.lb().drops_no_backend(), 1u);
  EXPECT_EQ(w.client_roundtrips(), 0u);
  EXPECT_EQ(w.lb().forwards(), 0u);

  // Restore one backend: the client's SYN retransmission resolves to it
  // and the connection completes against the recovered pool.
  w.lb().undrain(0);
  ASSERT_TRUE(w.run_until_roundtrips(5, 30'000'000));
  EXPECT_EQ(serving_backend(w), 0);
}

TEST(LbWorld, ChaosScriptDrivesBackendTargets) {
  const code::StackConfig cfg = base_cfg();
  LbWorld w(cfg, cfg, cfg, small_world(3));
  const net::ChaosTimeline tl = net::ChaosTimeline::parse(
      "drain@2000:backend1 undrain@8000:backend1 "
      "crash@10000:backend2 reboot@20000:backend2");
  tl.install(w, 0);
  w.start(1'000'000);

  ASSERT_TRUE(w.run_until([&] { return w.lb().drained(1); }, 1'000'000));
  EXPECT_EQ(w.lb().rebuilds().back().cause, LbRebuildCause::kDrain);
  ASSERT_TRUE(w.run_until([&] { return !w.lb().drained(1); }, 1'000'000));
  ASSERT_TRUE(
      w.run_until([&] { return w.backend(2).crashed(); }, 1'000'000));
  ASSERT_TRUE(
      w.run_until([&] { return !w.backend(2).crashed(); }, 1'000'000));
  EXPECT_EQ(w.backend(2).incarnation(), 2u);
}

TEST(LbWorld, CapturesTracedForwardingActivation) {
  const code::StackConfig cfg = base_cfg();
  LbWorld w(cfg, cfg, cfg, small_world(2));
  w.start(1'000'000);
  ASSERT_TRUE(w.run_until_roundtrips(5));

  code::PathTrace trace;
  w.lb().arm_capture(&trace);
  ASSERT_TRUE(
      w.run_until([&] { return w.lb().capture_complete(); }, 1'000'000));
  ASSERT_FALSE(trace.empty());

  // The steady-state activation walks the declared forwarding path:
  // driver intr, classify, track, rewrite, forward, driver send — and the
  // tx split lands strictly inside the event stream (post-kick work —
  // descriptor completion — overlaps the frame's flight).
  const code::CodeRegistry& reg = w.lb().registry();
  std::vector<code::FnId> want;
  for (const char* fn : {"lance_intr", "lb_classify", "lb_track",
                         "lb_rewrite", "lb_forward", "lance_send"}) {
    want.push_back(w.lb().registry().require(fn));
  }
  (void)reg;
  std::size_t next = 0;
  for (const code::Event& ev : trace.events) {
    if (next < want.size() && ev.kind == code::EventKind::kCall &&
        ev.fn == want[next]) {
      ++next;
    }
  }
  EXPECT_EQ(next, want.size());
  EXPECT_GT(w.lb().tx_split(), 0u);
  EXPECT_LT(w.lb().tx_split(), trace.events.size());

  // Steady state is the pinned fast path: no Maglev probe in the trace.
  const code::FnId maglev_fn = w.lb().registry().require("lb_maglev");
  for (const code::Event& ev : trace.events) {
    EXPECT_FALSE(ev.kind == code::EventKind::kCall && ev.fn == maglev_fn);
  }
}

TEST(LbWorld, DeterministicAcrossIdenticalRuns) {
  const code::StackConfig cfg = base_cfg();
  auto run = [&cfg] {
    LbWorld w(cfg, cfg, cfg, small_world(4));
    w.start(25);
    EXPECT_TRUE(w.run_until_roundtrips(25));
    return std::tuple{w.lb().forwards(), w.lb().returns_forwarded(),
                      w.lb().conn_track().stats().lookups,
                      serving_backend(w), w.events().now()};
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// The failover harness (harness/lb.h): cost measurement, packet
// conservation under chaos, steering verdicts, and the runner overload.

harness::LbSpec harness_row(const char* label, std::size_t backends,
                            const harness::LbCostTable& costs) {
  (void)costs;
  harness::LbSpec s;
  s.label = label;
  s.config = code::StackConfig::Pin();
  s.backends = backends;
  s.connections = 8;
  s.packets = 96;
  s.batch = 2;
  s.seed = 7;
  return s;
}

const harness::LbCostTable& pin_costs() {
  static const harness::LbCostTable t =
      harness::measure_lb_costs(code::StackConfig::Pin());
  return t;
}

TEST(LbHarness, CostTableSlowRebindExceedsPinnedFastPath) {
  const harness::LbCostTable& t = pin_costs();
  EXPECT_EQ(t.config_name, "PIN");
  EXPECT_GT(t.controller_us, 0.0);
  EXPECT_GT(t.fast_us, 0.0);
  // The rebind replays the same forward plus Maglev hash + probe through
  // the cold-segment standalone placements: strictly more work.
  EXPECT_GT(t.slow_us, t.fast_us);
}

TEST(LbHarness, ChaosFreeRowConservesAndPinsDigest) {
  const harness::LbSpec s = harness_row("chaos-free", 3, pin_costs());
  const harness::LbResult a = harness::run_lb(s, pin_costs());
  EXPECT_EQ(a.scheduled_sampled, s.packets);
  EXPECT_EQ(a.lost_packets, 0u);
  EXPECT_EQ(a.packets_sampled, a.scheduled_sampled + a.handshake_sampled);
  EXPECT_EQ(a.slow_forwards, 0u);
  EXPECT_EQ(a.track.stale_hits, 0u);
  EXPECT_TRUE(a.rebuilds.empty());
  EXPECT_EQ(a.disrupted_samples, 0u);
  EXPECT_EQ(a.steady_samples, a.packets_sampled);
  EXPECT_GT(a.latency.p50, 2 * pin_costs().controller_us);

  const harness::LbResult b = harness::run_lb(s, pin_costs());
  EXPECT_EQ(a.sample_digest, b.sample_digest);
  EXPECT_EQ(a.sim_us, b.sim_us);
}

TEST(LbHarness, DrainWindowLosesNoEstablishedFlowPackets) {
  harness::LbSpec s = harness_row("drain", 3, pin_costs());
  s.chaos = net::ChaosTimeline::parse(
      "drain@5000:backend1 undrain@30000:backend1");
  const harness::LbResult r = harness::run_lb(s, pin_costs());

  // Drain is hitless by construction: pinned flows ride out the removal.
  EXPECT_EQ(r.lost_packets, 0u);
  EXPECT_EQ(r.reconnects, 0u);
  EXPECT_EQ(r.scheduled_sampled, s.packets);
  EXPECT_EQ(r.track.stale_hits, 0u);

  ASSERT_EQ(r.rebuilds.size(), 2u);
  EXPECT_EQ(r.rebuilds[0].cause, net::LbRebuildCause::kDrain);
  EXPECT_EQ(r.rebuilds[0].invalidated, 0u);
  EXPECT_GT(r.rebuilds[0].remapped, 0u);
  EXPECT_EQ(r.rebuilds[1].cause, net::LbRebuildCause::kUndrain);

  ASSERT_EQ(r.windows.size(), 1u);
  EXPECT_TRUE(r.windows[0].steered_away);
  EXPECT_EQ(r.windows[0].tta_us, 0.0);  // administrative: immediate
  EXPECT_TRUE(r.windows[0].restored);
}

TEST(LbHarness, CrashFailoverIsDetectedSteeredAndRestored) {
  harness::LbSpec s = harness_row("crash", 2, pin_costs());
  s.chaos = net::ChaosTimeline::parse(
      "crash@5000:backend0 reboot@60000:backend0");
  const harness::LbResult r = harness::run_lb(s, pin_costs());

  // Detection needs fail_threshold consecutive probe misses, so the
  // time-to-steer-away is positive but bounded by the probe cadence.
  ASSERT_EQ(r.windows.size(), 1u);
  EXPECT_TRUE(r.windows[0].steered_away);
  EXPECT_GT(r.windows[0].tta_us, 0.0);
  EXPECT_LE(r.windows[0].tta_us,
            static_cast<double>((s.health.fail_threshold + 2) *
                                s.health.interval_us));
  EXPECT_TRUE(r.windows[0].restored);
  EXPECT_EQ(r.backend_incarnations, s.backends + 1);  // one reboot

  // The eviction rebuild invalidated the crashed backend's pinned flows.
  bool saw_down = false;
  for (const net::LbRebuild& rb : r.rebuilds) {
    if (rb.cause == net::LbRebuildCause::kHealthDown) {
      saw_down = true;
      EXPECT_EQ(rb.backend, 0);
    }
  }
  EXPECT_TRUE(saw_down);

  // Conservation holds under loss, and the disruption shows up in the
  // phase split.
  EXPECT_EQ(r.scheduled_sampled + r.lost_packets, s.packets);
  EXPECT_GT(r.disrupted_samples, 0u);
}

TEST(LbHarness, RunnerOverloadEmitsSchemaAndIsWorkerInvariant) {
  harness::LbRunSpec rs;
  rs.costs = pin_costs();
  harness::LbSpec row = harness_row("runner", 2, pin_costs());
  row.config = code::StackConfig::Pin();
  rs.rows = {row, row};
  rs.common.workers = 1;
  const harness::Outcome one = harness::run(rs);
  rs.common.workers = 3;
  const harness::Outcome three = harness::run(rs);

  EXPECT_EQ(one.schema, "l96.lb.v1");
  ASSERT_EQ(one.lb.size(), 2u);
  ASSERT_EQ(three.lb.size(), 2u);
  EXPECT_EQ(one.lb[0].sample_digest, three.lb[0].sample_digest);
  EXPECT_EQ(one.lb[1].sample_digest, three.lb[1].sample_digest);
  EXPECT_EQ(one.section.dump(), three.section.dump());
}

}  // namespace
}  // namespace l96
