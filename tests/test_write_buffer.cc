// Tests for the 4-deep write-merging write buffer.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/write_buffer.h"

namespace l96::sim {
namespace {

struct Fixture {
  std::vector<Addr> retired;
  WriteBuffer wb{WriteBuffer::Config{.depth = 4, .block_bytes = 32},
                 [this](Addr a) { retired.push_back(a); }};
};

TEST(WriteBuffer, AllocatesNewEntries) {
  Fixture f;
  auto r = f.wb.store(0x100);
  EXPECT_FALSE(r.merged);
  EXPECT_FALSE(r.forced_retire);
  EXPECT_EQ(f.wb.pending(), 1u);
  EXPECT_EQ(f.wb.allocations(), 1u);
}

TEST(WriteBuffer, MergesSameBlock) {
  Fixture f;
  f.wb.store(0x100);
  auto r = f.wb.store(0x108);  // same 32-byte block
  EXPECT_TRUE(r.merged);
  EXPECT_EQ(f.wb.pending(), 1u);
  EXPECT_EQ(f.wb.merges(), 1u);
  EXPECT_EQ(f.wb.allocations(), 1u);
}

TEST(WriteBuffer, DistinctBlocksDoNotMerge) {
  Fixture f;
  f.wb.store(0x100);
  auto r = f.wb.store(0x120);  // next block
  EXPECT_FALSE(r.merged);
  EXPECT_EQ(f.wb.pending(), 2u);
}

TEST(WriteBuffer, ForcedRetireIsFifo) {
  Fixture f;
  for (Addr a : {0x000, 0x020, 0x040, 0x060}) f.wb.store(a);
  EXPECT_EQ(f.wb.pending(), 4u);
  auto r = f.wb.store(0x080);
  EXPECT_TRUE(r.forced_retire);
  ASSERT_EQ(f.retired.size(), 1u);
  EXPECT_EQ(f.retired[0], 0x000u);  // oldest first
  EXPECT_EQ(f.wb.pending(), 4u);
  EXPECT_EQ(f.wb.forced_retires(), 1u);
}

TEST(WriteBuffer, MergeIntoOldEntryAvoidsRetire) {
  Fixture f;
  for (Addr a : {0x000, 0x020, 0x040, 0x060}) f.wb.store(a);
  auto r = f.wb.store(0x004);  // merges into the first entry
  EXPECT_TRUE(r.merged);
  EXPECT_TRUE(f.retired.empty());
}

TEST(WriteBuffer, DrainRetiresInOrder) {
  Fixture f;
  for (Addr a : {0x200, 0x240, 0x280}) f.wb.store(a);
  f.wb.drain();
  EXPECT_EQ(f.wb.pending(), 0u);
  ASSERT_EQ(f.retired.size(), 3u);
  EXPECT_EQ(f.retired[0], 0x200u);
  EXPECT_EQ(f.retired[1], 0x240u);
  EXPECT_EQ(f.retired[2], 0x280u);
}

TEST(WriteBuffer, ResetClearsEverything) {
  Fixture f;
  f.wb.store(0x100);
  f.wb.reset();
  EXPECT_EQ(f.wb.pending(), 0u);
  EXPECT_EQ(f.wb.stores(), 0u);
  f.wb.drain();
  EXPECT_TRUE(f.retired.empty());
}

TEST(WriteBuffer, ResetStatsKeepsEntries) {
  Fixture f;
  f.wb.store(0x100);
  f.wb.reset_stats();
  EXPECT_EQ(f.wb.stores(), 0u);
  EXPECT_EQ(f.wb.pending(), 1u);
  // The retained entry still merges.
  auto r = f.wb.store(0x104);
  EXPECT_TRUE(r.merged);
}

// Property: the set of retired blocks equals the set of distinct dirtied
// blocks regardless of merging.
TEST(WriteBufferProperty, MergingPreservesDirtySet) {
  Fixture f;
  std::vector<Addr> addrs;
  std::uint64_t seed = 99;
  for (int i = 0; i < 1000; ++i) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    addrs.push_back((seed >> 20) % 4096);
  }
  std::set<Addr> expected;
  for (Addr a : addrs) {
    expected.insert(a / 32 * 32);
    f.wb.store(a);
  }
  f.wb.drain();
  std::set<Addr> got(f.retired.begin(), f.retired.end());
  EXPECT_EQ(got, expected);
  EXPECT_EQ(f.wb.stores(), 1000u);
  EXPECT_EQ(f.wb.merges() + f.wb.allocations(), 1000u);
}

}  // namespace
}  // namespace l96::sim
