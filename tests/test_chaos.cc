// Tests for the failure-domain engine (net/chaos.h): the chaos script
// parser, link blackouts (frame conservation through a dead medium), host
// crash/reboot (timer purge, frame discard, incarnation bump, RST
// convergence), and the TCP survival machinery (bounded SYN retries,
// keepalive reaping of half-open connections).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "net/chaos.h"
#include "net/world.h"

namespace l96 {
namespace {

using net::ChaosKind;
using net::ChaosTarget;
using net::ChaosTimeline;

TEST(ChaosScript, ParseRoundtripAndWindows) {
  const ChaosTimeline tl = ChaosTimeline::parse(
      "  link_down@2000 link_up@52000   crash@150000:server "
      "reboot@250000:server ");
  EXPECT_EQ(tl.str(),
            "link_down@2000 link_up@52000 crash@150000:server "
            "reboot@250000:server");
  const auto ws = tl.windows();
  ASSERT_EQ(ws.size(), 2u);
  EXPECT_EQ(ws[0].start_us, 2'000u);
  EXPECT_EQ(ws[0].end_us, 52'000u);
  EXPECT_FALSE(ws[0].crash);
  EXPECT_EQ(ws[1].start_us, 150'000u);
  EXPECT_EQ(ws[1].end_us, 250'000u);
  EXPECT_TRUE(ws[1].crash);
  EXPECT_EQ(ws[1].target, ChaosTarget::kServer);
}

TEST(ChaosScript, RejectsMalformedScripts) {
  // Open-ended disruptions (the script must restore the world) ...
  EXPECT_THROW(ChaosTimeline::parse("link_down@1000"), std::invalid_argument);
  EXPECT_THROW(ChaosTimeline::parse("crash@1000:server"),
               std::invalid_argument);
  // ... state-machine violations ...
  EXPECT_THROW(ChaosTimeline::parse("link_up@1000"), std::invalid_argument);
  EXPECT_THROW(ChaosTimeline::parse("link_down@1 link_down@2 link_up@3"),
               std::invalid_argument);
  EXPECT_THROW(ChaosTimeline::parse("reboot@1000:server"),
               std::invalid_argument);
  EXPECT_THROW(ChaosTimeline::parse("link_down@5000 link_up@1000"),
               std::invalid_argument);
  // ... and syntax errors.
  EXPECT_THROW(ChaosTimeline::parse("crash@1000 reboot@2000"),
               std::invalid_argument);  // host verb without target
  EXPECT_THROW(ChaosTimeline::parse("link_down@2000:server link_up@3000"),
               std::invalid_argument);  // link verb with target
  EXPECT_THROW(ChaosTimeline::parse("crash@abc:server reboot@2000:server"),
               std::invalid_argument);
  EXPECT_THROW(ChaosTimeline::parse("explode@1000"), std::invalid_argument);
  EXPECT_THROW(ChaosTimeline::parse("crash@1:router reboot@2:router"),
               std::invalid_argument);
  EXPECT_THROW(ChaosTimeline::parse("link_down"), std::invalid_argument);
}

TEST(ChaosScript, ParsesBackendTargetsAndDrains) {
  const ChaosTimeline tl = ChaosTimeline::parse(
      "drain@1000:backend2 link_down@2000:backend0 link_up@3000:backend0 "
      "crash@4000:backend1 reboot@5000:backend1 undrain@6000:backend2");
  EXPECT_EQ(tl.str(),
            "drain@1000:backend2 link_down@2000:backend0 "
            "link_up@3000:backend0 crash@4000:backend1 reboot@5000:backend1 "
            "undrain@6000:backend2");
  const auto ws = tl.windows();
  ASSERT_EQ(ws.size(), 3u);
  // Drain window: administrative, not a crash.
  EXPECT_EQ(ws[0].start_us, 1'000u);
  EXPECT_EQ(ws[0].end_us, 6'000u);
  EXPECT_TRUE(ws[0].drain);
  EXPECT_FALSE(ws[0].crash);
  EXPECT_EQ(ws[0].index, 2u);
  // Backend-link blackout.
  EXPECT_EQ(ws[1].start_us, 2'000u);
  EXPECT_EQ(ws[1].target, ChaosTarget::kBackendLink);
  EXPECT_EQ(ws[1].index, 0u);
  EXPECT_FALSE(ws[1].crash);
  // Backend host crash.
  EXPECT_EQ(ws[2].start_us, 4'000u);
  EXPECT_TRUE(ws[2].crash);
  EXPECT_EQ(ws[2].target, ChaosTarget::kBackend);
  EXPECT_EQ(ws[2].index, 1u);
}

// The hardening contract: every parse rejection names the offending
// token, so a bad script in a CLI flag is diagnosable from the message
// alone.
void expect_parse_error_naming(const std::string& script,
                               const std::string& token) {
  try {
    ChaosTimeline::parse(script);
    FAIL() << "parse accepted: " << script;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(token), std::string::npos)
        << "message \"" << e.what() << "\" does not name \"" << token << "\"";
  }
}

TEST(ChaosScript, RejectionsNameTheOffendingToken) {
  // Unknown event kinds.
  expect_parse_error_naming("explode@1000", "explode");
  expect_parse_error_naming("link_down@1000 melt@2000 link_up@3000", "melt");
  // Non-monotone timestamps: the token that steps backwards is named.
  expect_parse_error_naming("link_down@5000 link_up@1000", "link_up@1000");
  expect_parse_error_naming(
      "drain@3000:backend0 crash@2000:server reboot@4000:server "
      "undrain@5000:backend0",
      "crash@2000:server");
  // Unknown hosts and malformed backend indices.
  expect_parse_error_naming("crash@1:router reboot@2:router", "router");
  expect_parse_error_naming("crash@1:backendX reboot@2:backendX",
                            "crash@1:backendX");
  expect_parse_error_naming("crash@1:backend reboot@2:backend",
                            "backend");
  // Bad times name both the time and the token.
  expect_parse_error_naming("crash@abc:server reboot@2000:server",
                            "crash@abc:server");
}

TEST(ChaosScript, RejectsMalformedBackendScripts) {
  // Drain verbs require a :backendN target...
  EXPECT_THROW(ChaosTimeline::parse("drain@1000:server undrain@2000:server"),
               std::invalid_argument);
  EXPECT_THROW(ChaosTimeline::parse("drain@1000 undrain@2000"),
               std::invalid_argument);
  // ... and pair up per index, like crash/reboot and link_down/link_up.
  EXPECT_THROW(ChaosTimeline::parse("drain@1000:backend0"),
               std::invalid_argument);
  EXPECT_THROW(ChaosTimeline::parse("undrain@1000:backend0"),
               std::invalid_argument);
  EXPECT_THROW(ChaosTimeline::parse(
                   "drain@1000:backend0 undrain@2000:backend1 "
                   "drain@3000:backend1 undrain@4000:backend0"),
               std::invalid_argument);
  EXPECT_THROW(ChaosTimeline::parse("link_down@1000:backend0"),
               std::invalid_argument);
  EXPECT_THROW(
      ChaosTimeline::parse("crash@1000:backend0 reboot@2000:backend1"),
      std::invalid_argument);
  // Link verbs never take a plain host.
  EXPECT_THROW(ChaosTimeline::parse("link_down@1000:client link_up@2000"),
               std::invalid_argument);
}

TEST(ChaosScript, InstallRejectsTargetsAbsentFromThisWorld) {
  // A two-host world has no backends and no LB pool: installing a script
  // that names them must fail at install time, naming the target.
  net::World w(net::StackKind::kTcpIp, code::StackConfig::Std(),
               code::StackConfig::Std());
  const ChaosTimeline crash_tl =
      ChaosTimeline::parse("crash@1000:backend0 reboot@2000:backend0");
  try {
    crash_tl.install(w, 0);
    FAIL() << "install accepted a backend target in a two-host world";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("backend0"), std::string::npos);
  }
  const ChaosTimeline drain_tl =
      ChaosTimeline::parse("drain@1000:backend0 undrain@2000:backend0");
  EXPECT_THROW(drain_tl.install(w, 0), std::invalid_argument);
  EXPECT_THROW(
      ChaosTimeline::parse("link_down@1000:backend1 link_up@2000:backend1")
          .install(w, 0),
      std::invalid_argument);
  // Nothing was scheduled by the failed installs.
  EXPECT_EQ(w.events().pending(), 0u);
}

TEST(Blackout, SwallowsFramesAndStaysConserved) {
  net::World w(net::StackKind::kTcpIp, code::StackConfig::Std(),
               code::StackConfig::Std());
  w.start(50);
  ASSERT_TRUE(w.run_until_roundtrips(5));

  const ChaosTimeline tl = ChaosTimeline::parse("link_down@1000 link_up@51000");
  tl.install(w, w.events().now());
  w.events().advance_by(2'000);
  EXPECT_FALSE(w.wire().is_link_up());

  // TCP rides out the outage on its retransmission timers and the run
  // completes once the link returns.
  ASSERT_TRUE(w.run_until_roundtrips(50, 120'000'000));
  EXPECT_TRUE(w.wire().is_link_up());
  EXPECT_EQ(w.wire().blackouts(), 1u);
  EXPECT_GT(w.wire().blackout_drops(), 0u);
  EXPECT_TRUE(w.wire().conserved());
  std::uint64_t rexmts = 0;
  for (proto::TcpConn* c : w.client().tcp()->connections()) {
    rexmts += c->retransmits();
  }
  EXPECT_GT(rexmts, 0u);  // the outage was ridden out on the rexmt timer
}

TEST(Chaos, CrashPurgesTimersAndRebootNeverRunsThem) {
  net::World w(net::StackKind::kTcpIp, code::StackConfig::Std(),
               code::StackConfig::Std());
  w.start(3);
  ASSERT_TRUE(w.run_until_roundtrips(3));

  bool fired = false;
  w.server().event_port().schedule_in(1'000, [&] { fired = true; });
  const std::size_t purged_before = w.server().purged_events();
  w.server().crash();
  EXPECT_TRUE(w.server().crashed());
  EXPECT_GE(w.server().purged_events(), purged_before + 1);
  EXPECT_EQ(w.events().pending_for(w.server().event_port().owner()), 0u);

  w.server().reboot();
  EXPECT_FALSE(w.server().crashed());
  EXPECT_EQ(w.server().incarnation(), 2u);
  w.events().advance_by(10'000);
  EXPECT_FALSE(fired);  // the pre-crash timer died with the incarnation
}

TEST(Chaos, RebootRequiresCrash) {
  net::World w(net::StackKind::kTcpIp, code::StackConfig::Std(),
               code::StackConfig::Std());
  EXPECT_THROW(w.server().reboot(), std::logic_error);
}

TEST(Chaos, CrashedHostDiscardsInboundFrames) {
  net::World w(net::StackKind::kTcpIp, code::StackConfig::Std(),
               code::StackConfig::Std());
  w.start(5);
  ASSERT_TRUE(w.run_until_roundtrips(5));
  proto::TcpConn* c = w.client().tcptest()->connection();
  ASSERT_NE(c, nullptr);

  w.server().crash();
  c->send(std::vector<std::uint8_t>(8, 0xAB));
  w.events().advance_by(1'000);
  EXPECT_GE(w.server().frames_to_dead(), 1u);
  EXPECT_TRUE(w.wire().conserved());  // discarded, not lost in accounting
}

TEST(Chaos, CrashRebootRstConvergence) {
  net::World w(net::StackKind::kTcpIp, code::StackConfig::Std(),
               code::StackConfig::Std());
  w.start(5);
  ASSERT_TRUE(w.run_until_roundtrips(5));
  ASSERT_TRUE(
      w.run_until([&] { return w.events().pending() == 0; }, 60'000'000));
  proto::TcpConn* c = w.client().tcptest()->connection();
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->state(), proto::TcpState::kEstablished);

  w.server().crash();
  w.server().reboot();
  EXPECT_EQ(w.server().incarnation(), 2u);

  // The client's next segment lands on a stack that never heard of the
  // connection: the new incarnation answers RST and the client converges.
  c->send(std::vector<std::uint8_t>(4, 0xCD));
  ASSERT_TRUE(w.run_until(
      [&] { return c->state() == proto::TcpState::kClosed; }, 60'000'000));
  EXPECT_EQ(w.server().tcp()->rst_sent(), 1u);
  EXPECT_EQ(w.client().tcptest()->connection(), nullptr);  // upcall detached
  ASSERT_TRUE(
      w.run_until([&] { return w.events().pending() == 0; }, 60'000'000));
  EXPECT_TRUE(w.wire().conserved());
}

TEST(Survival, SynRetryExhaustionSurfacesFailureWithoutLeaks) {
  net::World w(net::StackKind::kTcpIp, code::StackConfig::Std(),
               code::StackConfig::Std());
  w.client().set_tcp_max_syn_rexmts(3);
  w.wire().link_down();
  w.start(5);  // the SYN (and every retry) goes into the void

  ASSERT_TRUE(
      w.run_until([&] { return w.events().pending() == 0; }, 600'000'000));
  EXPECT_EQ(w.client().tcp()->connect_failures(), 1u);
  EXPECT_EQ(w.wire().blackout_drops(), 4u);  // SYN + 3 retries
  proto::TcpConn* c = w.client().tcptest()->connection();
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->state(), proto::TcpState::kClosed);
  EXPECT_EQ(w.events().pending(), 0u);  // give-up cancelled every timer
  w.wire().link_up();
  EXPECT_TRUE(w.wire().conserved());
}

TEST(Survival, KeepaliveReapsHalfOpenAfterPeerCrash) {
  net::World w(net::StackKind::kTcpIp, code::StackConfig::Std(),
               code::StackConfig::Std());
  w.client().set_tcp_keepalive(/*idle_us=*/100'000, /*intvl_us=*/50'000,
                               /*probes=*/2);
  w.start(5);
  ASSERT_TRUE(w.run_until_roundtrips(5));
  proto::TcpConn* c = w.client().tcptest()->connection();
  ASSERT_NE(c, nullptr);

  w.server().crash();  // never reboots: nobody will ever answer a probe
  ASSERT_TRUE(
      w.run_until([&] { return w.events().pending() == 0; }, 600'000'000));
  EXPECT_EQ(w.client().tcp()->keepalive_probes_sent(), 2u);
  EXPECT_EQ(w.client().tcp()->keepalive_reaps(), 1u);
  EXPECT_EQ(c->state(), proto::TcpState::kClosed);
  EXPECT_GE(w.server().frames_to_dead(), 2u);  // probes landed on a corpse
  EXPECT_EQ(w.events().pending(), 0u);
  EXPECT_TRUE(w.wire().conserved());
}

TEST(Survival, KeepaliveIsQuietOnALiveConnection) {
  // An active ping-pong keeps resetting the idle clock: no probes, no
  // reaps, and the run is undisturbed.
  net::World w(net::StackKind::kTcpIp, code::StackConfig::Std(),
               code::StackConfig::Std());
  w.client().set_tcp_keepalive(100'000, 50'000, 2);
  w.start(50);
  ASSERT_TRUE(w.run_until_roundtrips(50));
  EXPECT_EQ(w.client().tcp()->keepalive_probes_sent(), 0u);
  EXPECT_EQ(w.client().tcp()->keepalive_reaps(), 0u);
}

TEST(Survival, ReconnectResumesAfterCrashReboot) {
  // TcpTest's reconnect option: the client notices the dead peer via
  // keepalive, reconnects to the rebooted server, and finishes the run.
  net::World w(net::StackKind::kTcpIp, code::StackConfig::Std(),
               code::StackConfig::Std());
  w.client().set_tcp_keepalive(100'000, 50'000, 2);
  w.client().tcptest()->enable_reconnect();
  w.server().set_reboot_hook(
      [&w] { w.server().tcptest()->serve(net::World::kTcpServerPort); });
  w.start(40);
  ASSERT_TRUE(w.run_until_roundtrips(10));

  w.server().crash();
  w.server().reboot();
  ASSERT_TRUE(w.run_until_roundtrips(40, 120'000'000));
  EXPECT_GE(w.client().tcptest()->reconnects(), 1u);
  EXPECT_EQ(w.server().incarnation(), 2u);
  EXPECT_TRUE(w.wire().conserved());
}

}  // namespace
}  // namespace l96
