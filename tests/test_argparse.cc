// Tests for harness::ArgParser, the shared CLI surface for tools/.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "harness/argparse.h"

namespace l96 {
namespace {

using harness::ArgParser;
using harness::CommonCliArgs;

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> argv;
  for (std::string& a : args) argv.push_back(a.data());
  return argv;
}

TEST(ArgParseTest, FlagsOptionsAndPositionalsInterleave) {
  ArgParser p("demo", "demo tool");
  bool chaos = false;
  std::uint64_t count = 5;
  double rate = 1.0;
  std::string mode = "tcp";
  std::uint64_t conns = 8;
  p.add_flag("chaos", "enable chaos", &chaos);
  p.add_option("count", "N", "packet count", &count);
  p.add_option("rate", "X", "zipf exponent", &rate);
  p.add_positional("mode", "tcp|rpc", [&](const std::string& v) {
    if (v != "tcp" && v != "rpc") return false;
    mode = v;
    return true;
  });
  p.add_positional("conns", "connections", [&](const std::string& v) {
    conns = std::stoull(v);
    return true;
  });

  std::vector<std::string> args = {"demo", "rpc",    "--chaos", "--count",
                                   "42",   "--rate", "1.5",     "16"};
  auto argv = argv_of(args);
  std::ostringstream err;
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data(), err));
  EXPECT_TRUE(chaos);
  EXPECT_EQ(count, 42u);
  EXPECT_DOUBLE_EQ(rate, 1.5);
  EXPECT_EQ(mode, "rpc");
  EXPECT_EQ(conns, 16u);
  EXPECT_TRUE(err.str().empty());
}

TEST(ArgParseTest, DefaultsSurviveEmptyArgv) {
  ArgParser p("demo", "demo tool");
  std::uint64_t count = 7;
  p.add_option("count", "N", "count", &count);
  std::vector<std::string> args = {"demo"};
  auto argv = argv_of(args);
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(count, 7u);
}

TEST(ArgParseTest, UnknownFlagFailsWithUsage) {
  ArgParser p("demo", "demo tool");
  bool x = false;
  p.add_flag("x", "an x", &x);
  std::vector<std::string> args = {"demo", "--bogus"};
  auto argv = argv_of(args);
  std::ostringstream err;
  EXPECT_FALSE(p.parse(static_cast<int>(argv.size()), argv.data(), err));
  EXPECT_FALSE(p.help_shown());
  EXPECT_NE(err.str().find("unknown flag '--bogus'"), std::string::npos);
  EXPECT_NE(err.str().find("usage: demo"), std::string::npos);
}

TEST(ArgParseTest, MissingAndInvalidValuesFail) {
  std::uint64_t n = 0;
  {
    ArgParser p("demo", "demo tool");
    p.add_option("n", "N", "a number", &n);
    std::vector<std::string> args = {"demo", "--n"};
    auto argv = argv_of(args);
    std::ostringstream err;
    EXPECT_FALSE(p.parse(static_cast<int>(argv.size()), argv.data(), err));
    EXPECT_NE(err.str().find("needs a value"), std::string::npos);
  }
  {
    ArgParser p("demo", "demo tool");
    p.add_option("n", "N", "a number", &n);
    std::vector<std::string> args = {"demo", "--n", "12x"};
    auto argv = argv_of(args);
    std::ostringstream err;
    EXPECT_FALSE(p.parse(static_cast<int>(argv.size()), argv.data(), err));
    EXPECT_NE(err.str().find("invalid value '12x'"), std::string::npos);
  }
  {
    ArgParser p("demo", "demo tool");
    p.add_option("n", "N", "a number", &n);
    std::vector<std::string> args = {"demo", "--n", "-3"};
    auto argv = argv_of(args);
    std::ostringstream err;
    EXPECT_FALSE(p.parse(static_cast<int>(argv.size()), argv.data(), err));
  }
}

TEST(ArgParseTest, ExcessPositionalFails) {
  ArgParser p("demo", "demo tool");
  std::vector<std::string> args = {"demo", "stray"};
  auto argv = argv_of(args);
  std::ostringstream err;
  EXPECT_FALSE(p.parse(static_cast<int>(argv.size()), argv.data(), err));
  EXPECT_NE(err.str().find("unexpected argument 'stray'"), std::string::npos);
}

TEST(ArgParseTest, RejectedPositionalNamesIt) {
  ArgParser p("demo", "demo tool");
  p.add_positional("mode", "tcp|rpc",
                   [](const std::string& v) { return v == "tcp"; });
  std::vector<std::string> args = {"demo", "udp"};
  auto argv = argv_of(args);
  std::ostringstream err;
  EXPECT_FALSE(p.parse(static_cast<int>(argv.size()), argv.data(), err));
  EXPECT_NE(err.str().find("for <mode>"), std::string::npos);
}

TEST(ArgParseTest, HelpListsEverythingAndSetsHelpShown) {
  ArgParser p("demo", "a demo tool for tests");
  bool chaos = false;
  std::uint64_t count = 0;
  p.add_flag("chaos", "enable chaos", &chaos);
  p.add_option("count", "N", "packet count", &count);
  p.add_positional("mode", "tcp|rpc", [](const std::string&) { return true; });
  const std::string h = p.help();
  EXPECT_NE(h.find("a demo tool for tests"), std::string::npos);
  EXPECT_NE(h.find("--chaos"), std::string::npos);
  EXPECT_NE(h.find("--count N"), std::string::npos);
  EXPECT_NE(h.find("mode"), std::string::npos);
  EXPECT_NE(h.find("--help"), std::string::npos);

  std::vector<std::string> args = {"demo", "--help"};
  auto argv = argv_of(args);
  std::ostringstream err;
  EXPECT_FALSE(p.parse(static_cast<int>(argv.size()), argv.data(), err));
  EXPECT_TRUE(p.help_shown());
  EXPECT_TRUE(err.str().empty());
}

TEST(ArgParseTest, CommonCliArgsRegisterUniformSurface) {
  ArgParser p("demo", "demo tool");
  CommonCliArgs common;
  common.add_to(p);
  std::vector<std::string> args = {"demo", "--seed",    "99", "--workers",
                                   "3",    "--json",    "--out",
                                   "bench/out/x.json"};
  auto argv = argv_of(args);
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(common.seed, 99u);
  EXPECT_EQ(common.workers, 3u);
  EXPECT_TRUE(common.json);
  EXPECT_EQ(common.out, "bench/out/x.json");
}

}  // namespace
}  // namespace l96
