// Regression tests for throughput accounting under loss: retransmitted
// frames must charge per-packet processing time, and goodput must divide
// by wire time + total modeled processing.
#include <gtest/gtest.h>

#include "harness/throughput.h"

namespace l96 {
namespace {

TEST(ThroughputFaults, CleanRunChargesEveryFrameOnce) {
  const auto r =
      harness::measure_tcp_throughput(code::StackConfig::Std(), 64 * 1024);
  EXPECT_EQ(r.bytes, 64u * 1024u);
  EXPECT_EQ(r.retransmits, 0u);
  // Clean wire: everything offered was delivered, and the processing
  // charge reduces to the historical mean-tp-per-frame formula.
  EXPECT_EQ(r.frames, r.frames_delivered);
  EXPECT_GT(r.proc_seconds, 0.0);
  EXPECT_NEAR(r.kbytes_per_second,
              r.bytes / 1000.0 / (r.wire_seconds + r.proc_seconds), 1e-9);
}

TEST(ThroughputFaults, RetransmittedFramesChargeProcessing) {
  const code::StackConfig cfg = code::StackConfig::Std();
  const auto clean = harness::measure_tcp_throughput(cfg, 64 * 1024);

  net::FaultPlan plan;
  plan.seed = 11;
  plan.start_after_frames = 6;  // let the handshake settle
  for (int dir = 0; dir < 2; ++dir) plan.rates[dir].drop = 0.02;
  const auto lossy = harness::measure_tcp_throughput(cfg, 64 * 1024, &plan);

  ASSERT_EQ(lossy.bytes, 64u * 1024u) << "transfer must still complete";
  EXPECT_GT(lossy.retransmits, 0u);
  EXPECT_GT(lossy.frames, lossy.frames_delivered)
      << "dropped frames were offered to the wire but never delivered";

  // Regression: the per-frame processing rate must match the clean run —
  // every offered frame charges the sender share, every delivered frame
  // the receiver share.  (The old formula charged mean-tp x frames_carried,
  // silently billing receiver processing for frames nobody received and
  // nothing for the retransmissions' true position.)  Clean runs have
  // frames == delivered, so its rate is exactly mean-tp.
  const double clean_rate = clean.proc_seconds / static_cast<double>(
                                                     clean.frames);
  const double lossy_effective =
      (static_cast<double>(lossy.frames) +
       static_cast<double>(lossy.frames_delivered)) /
      2.0;
  EXPECT_NEAR(lossy.proc_seconds, clean_rate * lossy_effective,
              1e-12 * lossy.proc_seconds);
  // Sender work on dropped frames is charged: the total exceeds a
  // delivered-frames-only bill.
  EXPECT_GT(lossy.proc_seconds,
            clean_rate * static_cast<double>(lossy.frames_delivered));
  // Goodput divides by the total modeled time, processing included.
  EXPECT_NEAR(lossy.kbytes_per_second,
              lossy.bytes / 1000.0 /
                  (lossy.wire_seconds + lossy.proc_seconds),
              1e-9);
  EXPECT_LT(lossy.kbytes_per_second, clean.kbytes_per_second);
}

}  // namespace
}  // namespace l96
