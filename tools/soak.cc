// Chaos soak CLI: run one seeded soak and print its deterministic digest.
//
//   soak [--chaos] [tcp|rpc] [roundtrips] [seed] [rate%] [msg_bytes]
//
// `rate%` is the combined drop+corrupt+duplicate percentage, split evenly
// in the ratio 2:2:1 (e.g. 5 -> 2% drop, 2% corrupt, 1% duplicate) on both
// directions.  `--chaos` threads the mid-soak failure domains into the
// run: a 100 ms link blackout at the 1/3 mark and (TCP only) a 200 ms
// server crash/reboot at the 2/3 mark.  Exit status is 0 iff the soak was
// clean.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "harness/soak.h"

int main(int argc, char** argv) {
  using namespace l96;

  harness::SoakSpec spec;
  spec.kind = net::StackKind::kTcpIp;
  spec.roundtrips = 5000;
  std::uint64_t seed = 1;
  double rate_pct = 5.0;
  spec.msg_bytes = 32;

  if (argc > 1 && std::strcmp(argv[1], "--chaos") == 0) {
    spec.chaos = true;
    --argc;
    ++argv;
  }
  if (argc > 1) {
    if (std::strcmp(argv[1], "rpc") == 0) {
      spec.kind = net::StackKind::kRpc;
    } else if (std::strcmp(argv[1], "tcp") != 0) {
      std::fprintf(stderr, "usage: soak [--chaos] [tcp|rpc] [roundtrips]"
                           " [seed] [rate%%] [msg_bytes]\n");
      return 2;
    }
  }
  if (argc > 2) spec.roundtrips = std::strtoull(argv[2], nullptr, 10);
  if (argc > 3) seed = std::strtoull(argv[3], nullptr, 10);
  if (argc > 4) rate_pct = std::strtod(argv[4], nullptr);
  if (argc > 5) spec.msg_bytes = std::strtoull(argv[5], nullptr, 10);

  spec.plan.seed = seed;
  const double unit = rate_pct / 100.0 / 5.0;
  for (int p = 0; p < 2; ++p) {
    spec.plan.rates[p].drop = 2 * unit;
    spec.plan.rates[p].corrupt = 2 * unit;
    spec.plan.rates[p].duplicate = unit;
  }
  // Let the handshake / first exchange settle before the chaos starts.
  spec.plan.start_after_frames = 4;

  harness::SoakRunner runner(spec);
  const harness::SoakReport rep = runner.run();
  std::printf("%s %s\n",
              spec.kind == net::StackKind::kRpc ? "rpc" : "tcp",
              rep.summary().c_str());
  return rep.ok() ? 0 : 1;
}
