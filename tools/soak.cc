// Chaos soak CLI: run one seeded soak and print its deterministic digest.
//
//   soak [--chaos] [--seed N] [--workers N] [--json] [--out FILE]
//        [tcp|rpc] [roundtrips] [seed] [rate%] [msg_bytes]
//
// `rate%` is the combined drop+corrupt+duplicate percentage, split evenly
// in the ratio 2:2:1 (e.g. 5 -> 2% drop, 2% corrupt, 1% duplicate) on both
// directions.  `--chaos` threads the mid-soak failure domains into the
// run: a 100 ms link blackout at the 1/3 mark and (TCP only) a 200 ms
// server crash/reboot at the 2/3 mark.  --json emits the l96.soak.v1
// section to stdout instead of the summary line; --out also writes it to
// FILE.  Exit status is 0 iff the soak was clean.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/argparse.h"
#include "harness/runner.h"

int main(int argc, char** argv) {
  using namespace l96;

  harness::SoakSpec spec;
  spec.kind = net::StackKind::kTcpIp;
  spec.roundtrips = 5000;
  double rate_pct = 5.0;
  spec.msg_bytes = 32;

  harness::ArgParser parser(
      "soak", "run one seeded fault-injection soak and print its "
              "deterministic digest");
  harness::CommonCliArgs common;
  common.add_to(parser);
  parser.add_flag("chaos", "thread mid-soak blackout/crash domains into "
                           "the run", &spec.chaos);
  parser.add_positional("stack", "tcp|rpc (default tcp)",
                        [&](const std::string& v) {
                          if (v == "rpc") {
                            spec.kind = net::StackKind::kRpc;
                            return true;
                          }
                          return v == "tcp";
                        });
  parser.add_positional("roundtrips", "request/response count (default 5000)",
                        [&](const std::string& v) {
                          spec.roundtrips = std::strtoull(v.c_str(), nullptr, 10);
                          return true;
                        });
  parser.add_positional("seed", "fault-plan seed (default 1)",
                        [&](const std::string& v) {
                          common.seed = std::strtoull(v.c_str(), nullptr, 10);
                          return true;
                        });
  parser.add_positional("rate%", "combined drop+corrupt+duplicate %, "
                                 "split 2:2:1 (default 5)",
                        [&](const std::string& v) {
                          rate_pct = std::strtod(v.c_str(), nullptr);
                          return true;
                        });
  parser.add_positional("msg_bytes", "request payload bytes (default 32)",
                        [&](const std::string& v) {
                          spec.msg_bytes = std::strtoull(v.c_str(), nullptr, 10);
                          return true;
                        });
  if (!parser.parse(argc, argv)) return parser.help_shown() ? 0 : 2;

  spec.plan.seed = common.seed;
  const double unit = rate_pct / 100.0 / 5.0;
  for (int p = 0; p < 2; ++p) {
    spec.plan.rates[p].drop = 2 * unit;
    spec.plan.rates[p].corrupt = 2 * unit;
    spec.plan.rates[p].duplicate = unit;
  }
  // Let the handshake / first exchange settle before the chaos starts.
  spec.plan.start_after_frames = 4;

  harness::SoakRunSpec rs;
  rs.common.workers = common.workers;
  rs.common.out_path = common.out;
  rs.rows = {spec};
  harness::Outcome o;
  try {
    o = harness::run(rs);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "soak: %s\n", e.what());
    return 1;
  }
  const harness::SoakReport& rep = o.soak.front();
  if (common.json) {
    o.section.dump(std::cout);
    std::cout << "\n";
    return rep.ok() ? 0 : 1;
  }
  std::printf("%s %s\n",
              spec.kind == net::StackKind::kRpc ? "rpc" : "tcp",
              rep.summary().c_str());
  return rep.ok() ? 0 : 1;
}
