// Chaos CLI: run one fleet row through a scripted failure timeline and
// print the recovery report.
//
//   chaos [--script "S"] [--keepalive IDLE_US] [--syn-retries N]
//         [--json FILE] [scheme] [connections] [packets] [zipf_s] [seed]
//         [capacity]
//
// `S` is a whitespace-separated chaos script, e.g.
//   "link_down@2000 link_up@52000 crash@150000:server reboot@250000:server"
// (times are virtual microseconds relative to the post-establishment reset
// point).  `scheme` is one-behind | direct | lru.  --keepalive arms client
// and server keepalive probing (interval = IDLE_US / 2, 2 probes);
// --syn-retries bounds the reconnect storm's SYN retransmissions.
// --json writes the l96.recovery.v1 section to FILE.
//
// Exit status: 0 on success, 1 when a recovery invariant fails (packet
// conservation, deliveries inside a blackout/crash window, an unrecovered
// window), 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/recovery.h"

int main(int argc, char** argv) {
  using namespace l96;

  harness::RecoverySpec spec;
  spec.fleet.kind = net::StackKind::kTcpIp;
  spec.fleet.config = code::StackConfig::All();
  spec.fleet.scheme = code::FlowCacheScheme::kLru;
  spec.fleet.connections = 8;
  spec.fleet.packets = 128;
  spec.fleet.batch = 1;
  spec.fleet.zipf_s = 1.1;
  spec.fleet.seed = 1;
  spec.fleet.cache_capacity = 8;
  std::string script =
      "link_down@2000 link_up@52000 crash@150000:server reboot@250000:server";
  std::string json_path;

  const auto usage = [] {
    std::fprintf(stderr,
                 "usage: chaos [--script S] [--keepalive IDLE_US] "
                 "[--syn-retries N] [--json FILE] [one-behind|direct|lru] "
                 "[connections] [packets] [zipf_s] [seed] [capacity]\n");
    return 2;
  };

  std::vector<char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--script") == 0) {
      if (i + 1 >= argc) return usage();
      script = argv[++i];
    } else if (std::strcmp(argv[i], "--keepalive") == 0) {
      if (i + 1 >= argc) return usage();
      spec.keepalive_idle_us = std::strtoull(argv[++i], nullptr, 10);
      if (spec.keepalive_idle_us == 0) return usage();
      spec.keepalive_intvl_us = spec.keepalive_idle_us / 2;
      spec.keepalive_probes = 2;
    } else if (std::strcmp(argv[i], "--syn-retries") == 0) {
      if (i + 1 >= argc) return usage();
      spec.max_syn_rexmts =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) return usage();
      json_path = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }

  if (args.size() > 0) {
    const auto s = code::flow_cache_scheme_from_string(args[0]);
    if (!s) return usage();
    spec.fleet.scheme = *s;
  }
  if (args.size() > 1) {
    spec.fleet.connections = std::strtoull(args[1], nullptr, 10);
  }
  if (args.size() > 2) spec.fleet.packets = std::strtoull(args[2], nullptr, 10);
  if (args.size() > 3) spec.fleet.zipf_s = std::strtod(args[3], nullptr);
  if (args.size() > 4) spec.fleet.seed = std::strtoull(args[4], nullptr, 10);
  if (args.size() > 5) {
    spec.fleet.cache_capacity = std::strtoull(args[5], nullptr, 10);
  }
  if (spec.fleet.connections == 0 || spec.fleet.packets == 0 ||
      spec.fleet.cache_capacity == 0) {
    return usage();
  }
  spec.fleet.label = std::string("chaos/") + code::to_string(spec.fleet.scheme);

  try {
    spec.chaos = net::ChaosTimeline::parse(script);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }

  const harness::BurstCostTable costs =
      harness::measure_burst_costs(spec.fleet.kind, spec.fleet.config, 1);
  harness::RecoveryResult r;
  try {
    r = harness::run_recovery(spec, costs);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chaos: %s\n", e.what());
    return 1;
  }

  std::printf("%s conns=%zu packets=%llu zipf=%.2f seed=%llu cap=%zu\n",
              spec.fleet.label.c_str(), spec.fleet.connections,
              static_cast<unsigned long long>(spec.fleet.packets),
              spec.fleet.zipf_s,
              static_cast<unsigned long long>(spec.fleet.seed),
              spec.fleet.cache_capacity);
  std::printf("  script: %s\n", spec.chaos.str().c_str());
  std::printf("  sampled=%llu scheduled=%llu lost=%llu reconnects=%llu "
              "incarnation=%u\n",
              static_cast<unsigned long long>(r.fleet.packets_sampled),
              static_cast<unsigned long long>(r.fleet.scheduled_sampled),
              static_cast<unsigned long long>(r.lost_packets),
              static_cast<unsigned long long>(r.reconnects),
              r.server_incarnation);
  std::printf("  rexmt=%llu syn_rexmt=%llu connect_failures=%llu "
              "ka_probes=%llu ka_reaps=%llu rst=%llu\n",
              static_cast<unsigned long long>(r.client_retransmits),
              static_cast<unsigned long long>(r.client_syn_retransmits),
              static_cast<unsigned long long>(r.connect_failures),
              static_cast<unsigned long long>(r.keepalive_probes_sent),
              static_cast<unsigned long long>(r.keepalive_reaps),
              static_cast<unsigned long long>(r.rst_sent));
  std::printf("  blackout_drops=%llu frames_to_dead=%llu purged_events=%llu\n",
              static_cast<unsigned long long>(r.blackout_drops),
              static_cast<unsigned long long>(r.frames_to_dead),
              static_cast<unsigned long long>(r.purged_events));
  for (const harness::RecoveryWindow& w : r.windows) {
    std::printf("  window %s [%llu, %llu)us: in_window=%llu recovered=%d "
                "ttr=%.1fus\n",
                w.window.crash ? "crash" : "blackout",
                static_cast<unsigned long long>(w.start_abs_us),
                static_cast<unsigned long long>(w.end_abs_us),
                static_cast<unsigned long long>(w.samples_in_window),
                w.recovered ? 1 : 0, w.ttr_us);
  }
  std::printf("  steady   n=%llu p50=%.2f p99=%.2f p999=%.2f\n",
              static_cast<unsigned long long>(r.steady_samples), r.steady.p50,
              r.steady.p99, r.steady.p999);
  std::printf("  recovery n=%llu p50=%.2f p99=%.2f p999=%.2f\n",
              static_cast<unsigned long long>(r.recovery_samples),
              r.recovery.p50, r.recovery.p99, r.recovery.p999);
  std::printf("  digest=%016llx\n",
              static_cast<unsigned long long>(r.fleet.sample_digest));

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << harness::recovery_json(costs, {r}).dump() << '\n';
    if (!out) {
      std::fprintf(stderr, "chaos: cannot write %s\n", json_path.c_str());
      return 1;
    }
  }

  // Exit-enforced invariants.
  int rc = 0;
  if (r.fleet.spec.packets !=
      r.fleet.scheduled_sampled + r.fleet.dropped_in_churn + r.lost_packets) {
    std::fprintf(stderr, "chaos: packet conservation violated\n");
    rc = 1;
  }
  for (const harness::RecoveryWindow& w : r.windows) {
    if (w.samples_in_window != 0) {
      std::fprintf(stderr,
                   "chaos: %llu deliveries inside a disruption window\n",
                   static_cast<unsigned long long>(w.samples_in_window));
      rc = 1;
    }
    if (!w.recovered || w.ttr_us < 0) {
      std::fprintf(stderr, "chaos: window never recovered\n");
      rc = 1;
    }
  }
  return rc;
}
