// Chaos CLI: run one fleet row through a scripted failure timeline and
// print the recovery report.
//
//   chaos [--script "S"] [--keepalive IDLE_US] [--syn-retries N]
//         [--seed N] [--workers N] [--out FILE] [--json FILE]
//         [scheme] [connections] [packets] [zipf_s] [seed] [capacity]
//
// `S` is a whitespace-separated chaos script, e.g.
//   "link_down@2000 link_up@52000 crash@150000:server reboot@250000:server"
// (times are virtual microseconds relative to the post-establishment reset
// point).  `scheme` is one-behind | direct | lru.  --keepalive arms client
// and server keepalive probing (interval = IDLE_US / 2, 2 probes);
// --syn-retries bounds the reconnect storm's SYN retransmissions.
// --out writes the l96.recovery.v1 section to FILE; --json FILE is the
// deprecated spelling of the same thing (kept valued for existing
// invocations — unlike the other tools, where --json is a bare flag).
//
// Exit status: 0 on success, 1 when a recovery invariant fails (packet
// conservation, deliveries inside a blackout/crash window, an unrecovered
// window), 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "harness/argparse.h"
#include "harness/runner.h"

int main(int argc, char** argv) {
  using namespace l96;

  harness::RecoverySpec spec;
  spec.fleet.kind = net::StackKind::kTcpIp;
  spec.fleet.config = code::StackConfig::All();
  spec.fleet.scheme = code::FlowCacheScheme::kLru;
  spec.fleet.connections = 8;
  spec.fleet.packets = 128;
  spec.fleet.batch = 1;
  spec.fleet.zipf_s = 1.1;
  spec.fleet.seed = 1;
  spec.fleet.cache_capacity = 8;
  std::string script =
      "link_down@2000 link_up@52000 crash@150000:server reboot@250000:server";

  harness::ArgParser parser(
      "chaos", "run one fleet row through a scripted failure timeline and "
               "print the recovery report");
  std::uint64_t seed = 1;
  unsigned workers = 0;
  std::string out_path;
  parser.add_option("script", "S", "whitespace-separated chaos timeline",
                    &script);
  parser.add_option("keepalive", "IDLE_US",
                    "arm keepalive probing (interval = IDLE_US/2, 2 probes)",
                    [&](const std::string& v) {
                      spec.keepalive_idle_us =
                          std::strtoull(v.c_str(), nullptr, 10);
                      if (spec.keepalive_idle_us == 0) return false;
                      spec.keepalive_intvl_us = spec.keepalive_idle_us / 2;
                      spec.keepalive_probes = 2;
                      return true;
                    });
  parser.add_option("syn-retries", "N",
                    "bound the reconnect storm's SYN retransmissions",
                    [&](const std::string& v) {
                      spec.max_syn_rexmts = static_cast<std::uint32_t>(
                          std::strtoul(v.c_str(), nullptr, 10));
                      return true;
                    });
  parser.add_option("seed", "N", "deterministic schedule seed", &seed);
  parser.add_option("workers", "N",
                    "worker threads (0 = hardware concurrency)", &workers);
  parser.add_option("out", "FILE",
                    "write the l96.recovery.v1 section to FILE", &out_path);
  parser.add_option("json", "FILE", "deprecated alias of --out", &out_path);
  parser.add_positional("scheme", "one-behind|direct|lru (default lru)",
                        [&](const std::string& v) {
                          const auto s = code::flow_cache_scheme_from_string(v);
                          if (!s) return false;
                          spec.fleet.scheme = *s;
                          return true;
                        });
  parser.add_positional("connections", "fleet population (default 8)",
                        [&](const std::string& v) {
                          spec.fleet.connections =
                              std::strtoull(v.c_str(), nullptr, 10);
                          return spec.fleet.connections > 0;
                        });
  parser.add_positional("packets", "scheduled packets (default 128)",
                        [&](const std::string& v) {
                          spec.fleet.packets =
                              std::strtoull(v.c_str(), nullptr, 10);
                          return spec.fleet.packets > 0;
                        });
  parser.add_positional("zipf_s", "Zipf exponent (default 1.1)",
                        [&](const std::string& v) {
                          spec.fleet.zipf_s = std::strtod(v.c_str(), nullptr);
                          return true;
                        });
  parser.add_positional("seed", "schedule seed (default 1)",
                        [&](const std::string& v) {
                          seed = std::strtoull(v.c_str(), nullptr, 10);
                          return true;
                        });
  parser.add_positional("capacity", "flow-cache capacity (default 8)",
                        [&](const std::string& v) {
                          spec.fleet.cache_capacity =
                              std::strtoull(v.c_str(), nullptr, 10);
                          return spec.fleet.cache_capacity > 0;
                        });
  if (!parser.parse(argc, argv)) return parser.help_shown() ? 0 : 2;
  spec.fleet.seed = seed;
  spec.fleet.label = std::string("chaos/") + code::to_string(spec.fleet.scheme);

  try {
    spec.chaos = net::ChaosTimeline::parse(script);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "chaos: %s\n\n%s", e.what(), parser.help().c_str());
    return 2;
  }

  const harness::BurstCostTable costs =
      harness::measure_burst_costs(spec.fleet.kind, spec.fleet.config, 1);
  harness::RecoveryRunSpec rs;
  rs.common.workers = workers;
  rs.common.out_path = out_path;
  rs.rows = {spec};
  rs.costs = costs;
  harness::Outcome o;
  try {
    o = harness::run(rs);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chaos: %s\n", e.what());
    return 1;
  }
  const harness::RecoveryResult& r = o.recovery.front();

  std::printf("%s conns=%zu packets=%llu zipf=%.2f seed=%llu cap=%zu\n",
              spec.fleet.label.c_str(), spec.fleet.connections,
              static_cast<unsigned long long>(spec.fleet.packets),
              spec.fleet.zipf_s,
              static_cast<unsigned long long>(spec.fleet.seed),
              spec.fleet.cache_capacity);
  std::printf("  script: %s\n", spec.chaos.str().c_str());
  std::printf("  sampled=%llu scheduled=%llu lost=%llu reconnects=%llu "
              "incarnation=%u\n",
              static_cast<unsigned long long>(r.fleet.packets_sampled),
              static_cast<unsigned long long>(r.fleet.scheduled_sampled),
              static_cast<unsigned long long>(r.lost_packets),
              static_cast<unsigned long long>(r.reconnects),
              r.server_incarnation);
  std::printf("  rexmt=%llu syn_rexmt=%llu connect_failures=%llu "
              "ka_probes=%llu ka_reaps=%llu rst=%llu\n",
              static_cast<unsigned long long>(r.client_retransmits),
              static_cast<unsigned long long>(r.client_syn_retransmits),
              static_cast<unsigned long long>(r.connect_failures),
              static_cast<unsigned long long>(r.keepalive_probes_sent),
              static_cast<unsigned long long>(r.keepalive_reaps),
              static_cast<unsigned long long>(r.rst_sent));
  std::printf("  blackout_drops=%llu frames_to_dead=%llu purged_events=%llu\n",
              static_cast<unsigned long long>(r.blackout_drops),
              static_cast<unsigned long long>(r.frames_to_dead),
              static_cast<unsigned long long>(r.purged_events));
  for (const harness::RecoveryWindow& w : r.windows) {
    std::printf("  window %s [%llu, %llu)us: in_window=%llu recovered=%d "
                "ttr=%.1fus\n",
                w.window.crash ? "crash" : "blackout",
                static_cast<unsigned long long>(w.start_abs_us),
                static_cast<unsigned long long>(w.end_abs_us),
                static_cast<unsigned long long>(w.samples_in_window),
                w.recovered ? 1 : 0, w.ttr_us);
  }
  std::printf("  steady   n=%llu p50=%.2f p99=%.2f p999=%.2f\n",
              static_cast<unsigned long long>(r.steady_samples), r.steady.p50,
              r.steady.p99, r.steady.p999);
  std::printf("  recovery n=%llu p50=%.2f p99=%.2f p999=%.2f\n",
              static_cast<unsigned long long>(r.recovery_samples),
              r.recovery.p50, r.recovery.p99, r.recovery.p999);
  std::printf("  digest=%016llx\n",
              static_cast<unsigned long long>(r.fleet.sample_digest));

  // Exit-enforced invariants.
  int rc = 0;
  if (r.fleet.spec.packets !=
      r.fleet.scheduled_sampled + r.fleet.dropped_in_churn + r.lost_packets) {
    std::fprintf(stderr, "chaos: packet conservation violated\n");
    rc = 1;
  }
  for (const harness::RecoveryWindow& w : r.windows) {
    if (w.samples_in_window != 0) {
      std::fprintf(stderr,
                   "chaos: %llu deliveries inside a disruption window\n",
                   static_cast<unsigned long long>(w.samples_in_window));
      rc = 1;
    }
    if (!w.recovered || w.ttr_us < 0) {
      std::fprintf(stderr, "chaos: window never recovered\n");
      rc = 1;
    }
  }
  return rc;
}
