// LB CLI: run one load-balancer failover row through a scripted backend
// failure timeline and print the steering report.
//
//   lb [--script "S"] [--config pin|all] [--scheme NAME] [--capacity N]
//      [--seed N] [--workers N] [--out FILE]
//      [backends] [connections] [packets] [zipf_s] [seed]
//
// `S` is a whitespace-separated chaos script with backend targets, e.g.
//   "drain@20000:backend1 undrain@120000:backend1
//    crash@200000:backend0 reboot@400000:backend0"
// (times are virtual microseconds relative to the post-establishment
// reset point).  The config must carry path inlining — the stale-rebind
// slow path is what failover prices — so only pin and all are offered.
// --out writes the l96.lb.v1 section to FILE.
//
// Exit status: 0 on success, 1 when a failover invariant fails (packet
// conservation, a drain window losing established-flow packets, a window
// never steered away from or never restored), 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "harness/argparse.h"
#include "harness/runner.h"

int main(int argc, char** argv) {
  using namespace l96;

  harness::LbSpec spec;
  spec.config = code::StackConfig::Pin();
  spec.backends = 4;
  spec.connections = 8;
  spec.packets = 256;
  spec.batch = 1;
  spec.zipf_s = 1.1;
  spec.seed = 1;
  std::string script =
      "drain@20000:backend1 undrain@120000:backend1 "
      "crash@200000:backend0 reboot@400000:backend0";

  harness::ArgParser parser(
      "lb", "run one load-balancer failover row through a scripted backend "
            "failure timeline and print the steering report");
  std::uint64_t seed = 1;
  unsigned workers = 0;
  std::string out_path;
  parser.add_option("script", "S",
                    "whitespace-separated backend chaos timeline", &script);
  parser.add_option("config", "pin|all",
                    "stack layout for all three tiers (default pin)",
                    [&](const std::string& v) {
                      if (v == "pin") {
                        spec.config = code::StackConfig::Pin();
                      } else if (v == "all") {
                        spec.config = code::StackConfig::All();
                      } else {
                        return false;
                      }
                      return true;
                    });
  parser.add_option("scheme", "NAME", "conn-track scheme (default lru)",
                    [&](const std::string& v) {
                      const auto s = code::flow_cache_scheme_from_string(v);
                      if (!s) return false;
                      spec.track_scheme = *s;
                      return true;
                    });
  parser.add_option("capacity", "N", "conn-track capacity (default 1024)",
                    [&](const std::string& v) {
                      spec.track_capacity =
                          std::strtoull(v.c_str(), nullptr, 10);
                      return spec.track_capacity > 0;
                    });
  parser.add_option("seed", "N", "deterministic schedule seed", &seed);
  parser.add_option("workers", "N",
                    "worker threads (0 = hardware concurrency)", &workers);
  parser.add_option("out", "FILE", "write the l96.lb.v1 section to FILE",
                    &out_path);
  parser.add_positional("backends", "backend pool size (default 4)",
                        [&](const std::string& v) {
                          spec.backends = std::strtoull(v.c_str(), nullptr, 10);
                          return spec.backends > 0;
                        });
  parser.add_positional("connections", "client fleet size (default 8)",
                        [&](const std::string& v) {
                          spec.connections =
                              std::strtoull(v.c_str(), nullptr, 10);
                          return spec.connections > 0;
                        });
  parser.add_positional("packets", "scheduled packets (default 256)",
                        [&](const std::string& v) {
                          spec.packets = std::strtoull(v.c_str(), nullptr, 10);
                          return spec.packets > 0;
                        });
  parser.add_positional("zipf_s", "Zipf exponent (default 1.1)",
                        [&](const std::string& v) {
                          spec.zipf_s = std::strtod(v.c_str(), nullptr);
                          return true;
                        });
  parser.add_positional("seed", "schedule seed (default 1)",
                        [&](const std::string& v) {
                          seed = std::strtoull(v.c_str(), nullptr, 10);
                          return true;
                        });
  if (!parser.parse(argc, argv)) return parser.help_shown() ? 0 : 2;
  spec.seed = seed;
  spec.label = spec.config.name + "/" + code::to_string(spec.track_scheme) +
               "/b" + std::to_string(spec.backends);

  try {
    spec.chaos = net::ChaosTimeline::parse(script);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "lb: %s\n\n%s", e.what(), parser.help().c_str());
    return 2;
  }

  const harness::LbCostTable costs =
      harness::measure_lb_costs(spec.config, spec.params);
  harness::LbRunSpec rs;
  rs.common.workers = workers;
  rs.common.out_path = out_path;
  rs.rows = {spec};
  rs.costs = costs;
  harness::Outcome o;
  try {
    o = harness::run(rs);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lb: %s\n", e.what());
    return 1;
  }
  const harness::LbResult& r = o.lb.front();

  std::printf("%s backends=%zu conns=%zu packets=%llu zipf=%.2f seed=%llu\n",
              spec.label.c_str(), spec.backends, spec.connections,
              static_cast<unsigned long long>(spec.packets), spec.zipf_s,
              static_cast<unsigned long long>(spec.seed));
  std::printf("  script: %s\n", spec.chaos.str().c_str());
  std::printf("  costs: controller=%.3fus fast=%.3fus slow=%.3fus (%s)\n",
              costs.controller_us, costs.fast_us, costs.slow_us,
              costs.config_name.c_str());
  std::printf("  sampled=%llu scheduled=%llu lost=%llu reconnects=%llu "
              "incarnations=%u\n",
              static_cast<unsigned long long>(r.packets_sampled),
              static_cast<unsigned long long>(r.scheduled_sampled),
              static_cast<unsigned long long>(r.lost_packets),
              static_cast<unsigned long long>(r.reconnects),
              r.backend_incarnations);
  std::printf("  forwards=%llu slow=%llu returns=%llu no_backend=%llu "
              "dark=%llu probes=%llu\n",
              static_cast<unsigned long long>(r.forwards),
              static_cast<unsigned long long>(r.slow_forwards),
              static_cast<unsigned long long>(r.returns_forwarded),
              static_cast<unsigned long long>(r.drops_no_backend),
              static_cast<unsigned long long>(r.dark_forwards),
              static_cast<unsigned long long>(r.health_probes));
  std::printf("  track: hits=%llu misses=%llu stale=%llu\n",
              static_cast<unsigned long long>(r.track.hits),
              static_cast<unsigned long long>(r.track.misses),
              static_cast<unsigned long long>(r.track.stale_hits));
  for (const net::LbRebuild& rb : r.rebuilds) {
    std::printf("  rebuild @%lluus %s backend%u: remapped=%zu "
                "invalidated=%zu pool=%zu\n",
                static_cast<unsigned long long>(rb.at_us),
                net::to_string(rb.cause), rb.backend, rb.remapped,
                rb.invalidated, rb.pool_size);
  }
  for (const harness::LbSteer& w : r.windows) {
    std::printf("  window %s backend%u [%llu, %llu)us: steered=%d "
                "tta=%.1fus restored=%d ttr=%.1fus in_window=%llu\n",
                w.window.crash ? "crash" : (w.window.drain ? "drain"
                                                           : "blackout"),
                w.window.index,
                static_cast<unsigned long long>(w.start_abs_us),
                static_cast<unsigned long long>(w.end_abs_us),
                w.steered_away ? 1 : 0, w.tta_us, w.restored ? 1 : 0,
                w.ttr_us,
                static_cast<unsigned long long>(w.samples_in_window));
  }
  std::printf("  steady    n=%llu p50=%.2f p99=%.2f p999=%.2f\n",
              static_cast<unsigned long long>(r.steady_samples), r.steady.p50,
              r.steady.p99, r.steady.p999);
  std::printf("  disrupted n=%llu p50=%.2f p99=%.2f p999=%.2f\n",
              static_cast<unsigned long long>(r.disrupted_samples),
              r.disrupted.p50, r.disrupted.p99, r.disrupted.p999);
  std::printf("  digest=%016llx\n",
              static_cast<unsigned long long>(r.sample_digest));

  // Exit-enforced invariants.
  int rc = 0;
  if (spec.packets != r.scheduled_sampled + r.lost_packets) {
    std::fprintf(stderr, "lb: packet conservation violated\n");
    rc = 1;
  }
  bool any_crash = false;
  for (const harness::LbSteer& w : r.windows) any_crash |= w.window.crash;
  if (!any_crash && !r.windows.empty() && r.lost_packets != 0) {
    std::fprintf(stderr, "lb: a crash-free script lost %llu packets\n",
                 static_cast<unsigned long long>(r.lost_packets));
    rc = 1;
  }
  for (const harness::LbSteer& w : r.windows) {
    if (!w.steered_away) {
      std::fprintf(stderr, "lb: window never steered away\n");
      rc = 1;
    }
    if (!w.restored) {
      std::fprintf(stderr, "lb: window never restored\n");
      rc = 1;
    }
  }
  return rc;
}
