// missmap: cache-miss attribution maps for the paper configurations.
//
// Runs the usual capture + replay with a sim::MissProfiler attached and
// prints, per configuration, which functions miss, whose lines they evict
// (the conflict matrix behind the bipartite layout), and each owner's mCPI
// contribution.
//
// Usage: missmap [options]
//   --stack tcpip|rpc     protocol stack (default tcpip)
//   --config NAME|all     one of BAD/STD/OUT/CLO/PIN/ALL, or all (default STD)
//   --side client|server  which host's replay to print (default client)
//   --replay steady|cold  which replay's profile (default steady)
//   --cache i|d           instruction or data cache (default i)
//   --top N               rows per table (default 10)
//   --workers N           sweep worker threads (0 = hardware concurrency)
//   --json                emit the l96.missmap.v1 sections as JSON instead
//   --out FILE            also write the JSON sections to FILE
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness/argparse.h"
#include "harness/missmap.h"
#include "harness/sweep.h"

using namespace l96;

int main(int argc, char** argv) {
  net::StackKind kind = net::StackKind::kTcpIp;
  std::string config = "STD";
  std::string side = "client";
  std::string replay = "steady";
  std::string cache = "i";
  std::uint64_t top = 10;
  unsigned workers = 0;
  bool json = false;
  std::string out_path;

  harness::ArgParser parser(
      "missmap", "cache-miss attribution maps for the paper configurations");
  parser.add_option("stack", "tcpip|rpc", "protocol stack (default tcpip)",
                    [&](const std::string& v) {
                      kind = v == "rpc" ? net::StackKind::kRpc
                                        : net::StackKind::kTcpIp;
                      return true;
                    });
  parser.add_option("config", "NAME|all",
                    "one of BAD/STD/OUT/CLO/PIN/ALL, or all (default STD)",
                    &config);
  parser.add_option("side", "client|server",
                    "which host's replay to print (default client)",
                    [&](const std::string& v) {
                      if (v != "client" && v != "server") return false;
                      side = v;
                      return true;
                    });
  parser.add_option("replay", "steady|cold",
                    "which replay's profile (default steady)",
                    [&](const std::string& v) {
                      if (v != "steady" && v != "cold") return false;
                      replay = v;
                      return true;
                    });
  parser.add_option("cache", "i|d", "instruction or data cache (default i)",
                    [&](const std::string& v) {
                      if (v != "i" && v != "d") return false;
                      cache = v;
                      return true;
                    });
  parser.add_option("top", "N", "rows per table (default 10, > 0)",
                    [&](const std::string& v) {
                      top = std::strtoull(v.c_str(), nullptr, 10);
                      return top > 0;
                    });
  parser.add_option("workers", "N",
                    "sweep worker threads (0 = hardware concurrency)",
                    &workers);
  parser.add_flag("json", "emit the l96.missmap.v1 sections as JSON instead",
                  &json);
  parser.add_option("out", "FILE", "also write the JSON sections to FILE",
                    &out_path);
  if (!parser.parse(argc, argv)) return parser.help_shown() ? 0 : 2;

  std::vector<code::StackConfig> cfgs;
  if (config == "all") {
    cfgs = harness::paper_configs();
  } else {
    for (const auto& c : harness::paper_configs()) {
      if (c.name == config) cfgs.push_back(c);
    }
    if (cfgs.empty()) {
      std::fprintf(stderr, "unknown config '%s' (try BAD/STD/OUT/CLO/PIN/ALL "
                           "or all)\n",
                   config.c_str());
      return 2;
    }
  }

  std::vector<harness::SweepJob> jobs;
  for (const auto& c : cfgs) {
    harness::SweepJob j;
    j.kind = kind;
    j.client = c;
    j.server = c;
    j.profile_misses = true;
    jobs.push_back(std::move(j));
  }
  harness::SweepRunner runner(workers);
  const auto outcomes = runner.run(jobs);

  if (json || !out_path.empty()) {
    harness::Json out = harness::Json::array();
    for (const auto& o : outcomes) {
      out.push_back(harness::Json::object()
                        .set("label", o.label)
                        .set("missmap", harness::missmap_json(o.result, top)));
    }
    if (!out_path.empty()) {
      const std::filesystem::path p(out_path);
      if (p.has_parent_path()) {
        std::filesystem::create_directories(p.parent_path());
      }
      std::ofstream f(out_path);
      f << out.dump() << "\n";
      if (!f) {
        std::fprintf(stderr, "missmap: cannot write %s\n", out_path.c_str());
        return 1;
      }
    }
    if (json) {
      out.dump(std::cout);
      std::cout << "\n";
      return 0;
    }
  }

  const char* stack_name = kind == net::StackKind::kRpc ? "rpc" : "tcpip";
  for (const auto& o : outcomes) {
    const harness::SideMeasurement& m =
        side == "server" ? o.result.server : o.result.client;
    const auto& profile = replay == "cold" ? m.miss_cold : m.miss_steady;
    if (!profile) {
      std::fprintf(stderr, "no %s profile for %s\n", replay.c_str(),
                   o.label.c_str());
      return 1;
    }
    const sim::MissProfile::Section& s =
        cache == "d" ? profile->dcache : profile->icache;
    std::cout << o.label << " (" << stack_name << ", " << side << ", "
              << replay << " replay, " << cache << "-cache)\n";
    harness::print_miss_section(std::cout, s, m.instructions, top);
    std::cout << "\n";
  }
  return 0;
}
