// missmap: cache-miss attribution maps for the paper configurations.
//
// Runs the usual capture + replay with a sim::MissProfiler attached and
// prints, per configuration, which functions miss, whose lines they evict
// (the conflict matrix behind the bipartite layout), and each owner's mCPI
// contribution.
//
// Usage: missmap [options]
//   --stack tcpip|rpc     protocol stack (default tcpip)
//   --config NAME|all     one of BAD/STD/OUT/CLO/PIN/ALL, or all (default STD)
//   --side client|server  which host's replay to print (default client)
//   --replay steady|cold  which replay's profile (default steady)
//   --cache i|d           instruction or data cache (default i)
//   --top N               rows per table (default 10)
//   --json                emit the l96.missmap.v1 sections as JSON instead
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/missmap.h"
#include "harness/sweep.h"

using namespace l96;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--stack tcpip|rpc] [--config NAME|all] "
               "[--side client|server] [--replay steady|cold] [--cache i|d] "
               "[--top N] [--json]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  net::StackKind kind = net::StackKind::kTcpIp;
  std::string config = "STD";
  std::string side = "client";
  std::string replay = "steady";
  std::string cache = "i";
  std::size_t top = 10;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto val = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--stack") {
      const char* v = val();
      if (v == nullptr) return usage(argv[0]);
      kind = std::strcmp(v, "rpc") == 0 ? net::StackKind::kRpc
                                        : net::StackKind::kTcpIp;
    } else if (a == "--config") {
      const char* v = val();
      if (v == nullptr) return usage(argv[0]);
      config = v;
    } else if (a == "--side") {
      const char* v = val();
      if (v == nullptr || (std::strcmp(v, "client") != 0 &&
                           std::strcmp(v, "server") != 0)) {
        return usage(argv[0]);
      }
      side = v;
    } else if (a == "--replay") {
      const char* v = val();
      if (v == nullptr ||
          (std::strcmp(v, "steady") != 0 && std::strcmp(v, "cold") != 0)) {
        return usage(argv[0]);
      }
      replay = v;
    } else if (a == "--cache") {
      const char* v = val();
      if (v == nullptr || (std::strcmp(v, "i") != 0 &&
                           std::strcmp(v, "d") != 0)) {
        return usage(argv[0]);
      }
      cache = v;
    } else if (a == "--top") {
      const char* v = val();
      if (v == nullptr) return usage(argv[0]);
      top = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
      if (top == 0) return usage(argv[0]);
    } else if (a == "--json") {
      json = true;
    } else {
      return usage(argv[0]);
    }
  }

  std::vector<code::StackConfig> cfgs;
  if (config == "all") {
    cfgs = harness::paper_configs();
  } else {
    for (const auto& c : harness::paper_configs()) {
      if (c.name == config) cfgs.push_back(c);
    }
    if (cfgs.empty()) {
      std::fprintf(stderr, "unknown config '%s' (try BAD/STD/OUT/CLO/PIN/ALL "
                           "or all)\n",
                   config.c_str());
      return 2;
    }
  }

  std::vector<harness::SweepJob> jobs;
  for (const auto& c : cfgs) {
    harness::SweepJob j;
    j.kind = kind;
    j.client = c;
    j.server = c;
    j.profile_misses = true;
    jobs.push_back(std::move(j));
  }
  harness::SweepRunner runner;
  const auto outcomes = runner.run(jobs);

  if (json) {
    harness::Json out = harness::Json::array();
    for (const auto& o : outcomes) {
      out.push_back(harness::Json::object()
                        .set("label", o.label)
                        .set("missmap", harness::missmap_json(o.result, top)));
    }
    out.dump(std::cout);
    std::cout << "\n";
    return 0;
  }

  const char* stack_name = kind == net::StackKind::kRpc ? "rpc" : "tcpip";
  for (const auto& o : outcomes) {
    const harness::SideMeasurement& m =
        side == "server" ? o.result.server : o.result.client;
    const auto& profile = replay == "cold" ? m.miss_cold : m.miss_steady;
    if (!profile) {
      std::fprintf(stderr, "no %s profile for %s\n", replay.c_str(),
                   o.label.c_str());
      return 1;
    }
    const sim::MissProfile::Section& s =
        cache == "d" ? profile->dcache : profile->icache;
    std::cout << o.label << " (" << stack_name << ", " << side << ", "
              << replay << " replay, " << cache << "-cache)\n";
    harness::print_miss_section(std::cout, s, m.instructions, top);
    std::cout << "\n";
  }
  return 0;
}
