// trace_dump: capture and publish protocol-processing traces, in the spirit
// of the paper's FTP-published instruction traces.
//
// Usage: trace_dump [tcp|rpc] [CONFIG] [path|machine]
//   path     (default) the captured event trace, text format
//   machine  the lowered instruction trace under CONFIG's code image
#include <cstring>
#include <iostream>

#include "code/trace_io.h"
#include "harness/experiment.h"

using namespace l96;

int main(int argc, char** argv) {
  const net::StackKind kind =
      (argc > 1 && std::strcmp(argv[1], "rpc") == 0) ? net::StackKind::kRpc
                                                     : net::StackKind::kTcpIp;
  std::string cfg_name = argc > 2 ? argv[2] : "STD";
  std::string what = argc > 3 ? argv[3] : "path";

  code::StackConfig cfg = code::StackConfig::Std();
  for (const auto& c : harness::paper_configs()) {
    if (c.name == cfg_name) cfg = c;
  }
  const auto scfg =
      kind == net::StackKind::kRpc ? code::StackConfig::All() : cfg;

  harness::Experiment e(kind, cfg, scfg);
  e.run();
  if (what == "machine") {
    code::write_machine_trace(std::cout, e.lower_client());
  } else {
    code::write_path_trace(std::cout, e.client_trace(),
                           &e.world().client().registry());
  }
  return 0;
}
