// Fleet CLI: run one flow-cache fleet row and print its stats + digest.
//
//   fleet [--burst N] [--cores N] [--steering hash|least] [--arrival-us X]
//         [--rules N] [--rule-seed N]
//         [--seed N] [--workers N] [--json] [--out FILE]
//         [tcp|rpc] [scheme] [connections] [packets] [zipf_s]
//         [seed] [capacity] [churn_every]
//
// `scheme` is one-behind | direct | lru.  Prints per-scheme hit/stale
// ratios, the per-packet latency percentiles, and the FNV-1a sample digest
// (compare digests across hosts/worker counts to check determinism).
//
// `--burst N` sends N back-to-back packets per scheduled flow draw
// (per-flow coalescing); packets after the first in a burst are priced at
// their burst position from the position-indexed cost table, so they pay
// the amortized cost of the cache residue their predecessors left behind.
// The default (no flag) is batch 1 — every packet is an independent
// first-in-burst activation, byte-identical to the pre-burst engine.
//
// `--rules N` grows the server's classifier to N decoy paths ahead of the
// real fast path (protocols/rulegen.h; --rule-seed picks the generated
// set) and replaces the analytic flow-cache cost constants with measured
// coefficients: the classification code is registered in the code model
// and its hit / match / no-match activations are replayed through the
// simulated caches (harness/classify.h) before the row runs.
//
// `--cores N` shards the fleet across N simulated cores (RSS flow
// steering, per-core machine models — see harness/shard.h); --steering
// picks the flow->core policy and --arrival-us enables the open-loop
// queueing view.  The default (--cores 1) runs the flat single-machine
// engine and its output is unchanged.  --json emits the row's
// schema-versioned section (l96.fleet.v2 flat, l96.shard.v1 sharded) to
// stdout instead of text; --out also writes it to FILE.
// Exit status is 0 on success, 1 on a failed shard invariant, 2 on usage
// errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/argparse.h"
#include "harness/classify.h"
#include "harness/runner.h"

int main(int argc, char** argv) {
  using namespace l96;

  harness::FleetSpec spec;
  spec.kind = net::StackKind::kTcpIp;
  spec.config = code::StackConfig::All();
  spec.scheme = code::FlowCacheScheme::kLru;
  spec.connections = 8;
  spec.packets = 128;
  spec.batch = 1;
  spec.zipf_s = 1.1;
  spec.seed = 1;
  spec.cache_capacity = 8;
  spec.churn_every = 0;

  harness::ShardSpec shard;
  shard.cores = 1;
  std::string steering = "hash";

  harness::ArgParser parser(
      "fleet", "run one flow-cache fleet row (optionally sharded across "
               "simulated cores) and print its stats + digest");
  harness::CommonCliArgs common;
  common.add_to(parser);
  parser.add_option("burst", "N", "packets per scheduled flow draw (>0)",
                    [&](const std::string& v) {
                      spec.batch = std::strtoull(v.c_str(), nullptr, 10);
                      return spec.batch > 0;
                    });
  std::uint64_t cores = 1;
  parser.add_option("cores", "N", "simulated cores to shard across (>0)",
                    &cores);
  parser.add_option("steering", "hash|least",
                    "flow->core steering policy (sharded runs)", &steering);
  parser.add_option("arrival-us", "X",
                    "open-loop arrival spacing for the queueing view "
                    "(sharded runs; 0 = closed loop)",
                    &shard.arrival_us);
  parser.add_option("rules", "N",
                    "decoy classifier paths on the server; measured "
                    "flow-cache costs (default 0 = analytic)",
                    [&](const std::string& v) {
                      spec.rules = std::strtoull(v.c_str(), nullptr, 10);
                      return true;
                    });
  parser.add_option("rule-seed", "N", "rule-generator seed (default 1)",
                    [&](const std::string& v) {
                      spec.rule_seed = std::strtoull(v.c_str(), nullptr, 10);
                      return true;
                    });
  parser.add_positional("stack", "tcp|rpc (default tcp)",
                        [&](const std::string& v) {
                          if (v == "rpc") {
                            spec.kind = net::StackKind::kRpc;
                            return true;
                          }
                          return v == "tcp";
                        });
  parser.add_positional("scheme", "one-behind|direct|lru (default lru)",
                        [&](const std::string& v) {
                          const auto s = code::flow_cache_scheme_from_string(v);
                          if (!s) return false;
                          spec.scheme = *s;
                          return true;
                        });
  parser.add_positional("connections", "fleet population (default 8)",
                        [&](const std::string& v) {
                          spec.connections = std::strtoull(v.c_str(), nullptr, 10);
                          return spec.connections > 0;
                        });
  parser.add_positional("packets", "scheduled packets (default 128)",
                        [&](const std::string& v) {
                          spec.packets = std::strtoull(v.c_str(), nullptr, 10);
                          return spec.packets > 0;
                        });
  parser.add_positional("zipf_s", "Zipf exponent (default 1.1)",
                        [&](const std::string& v) {
                          spec.zipf_s = std::strtod(v.c_str(), nullptr);
                          return true;
                        });
  parser.add_positional("seed", "schedule seed (default 1)",
                        [&](const std::string& v) {
                          common.seed = std::strtoull(v.c_str(), nullptr, 10);
                          return true;
                        });
  parser.add_positional("capacity", "flow-cache capacity (default 8)",
                        [&](const std::string& v) {
                          spec.cache_capacity =
                              std::strtoull(v.c_str(), nullptr, 10);
                          return spec.cache_capacity > 0;
                        });
  parser.add_positional("churn_every",
                        "churn flow 0 every N packets (default 0 = never)",
                        [&](const std::string& v) {
                          spec.churn_every = std::strtoull(v.c_str(), nullptr, 10);
                          return true;
                        });
  if (!parser.parse(argc, argv)) return parser.help_shown() ? 0 : 2;
  if (cores == 0) {
    std::fprintf(stderr, "fleet: --cores must be > 0\n");
    return 2;
  }
  shard.cores = cores;
  spec.seed = common.seed;
  try {
    shard.steering = harness::steering_policy_from_string(steering);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "fleet: %s\n", e.what());
    return 2;
  }
  spec.label = std::string(spec.kind == net::StackKind::kRpc ? "rpc" : "tcp") +
               "/" + code::to_string(spec.scheme);

  // Positions converge within a few packets; 8 table entries cover any
  // batch size (fast_at/slow_at clamp to the steady-amortized floor).
  const std::size_t positions = std::min<std::size_t>(spec.batch, 8);
  const harness::BurstCostTable costs =
      harness::measure_burst_costs(spec.kind, spec.config, positions);

  if (spec.rules > 0) {
    harness::ClassifierCostSpec cs;
    cs.kind = spec.kind;
    cs.cfg = spec.config;
    cs.rules = spec.rules;
    cs.rule_seed = spec.rule_seed;
    const harness::ClassifierCostMeasurement m =
        harness::measure_classifier_costs(cs);
    spec.cache_costs = m.costs;
    std::fprintf(stderr,
                 "fleet: measured classifier costs for %zu rules "
                 "(%zu tuples, %s engine): hit=%.3fus probe=%.3fus "
                 "per_rule=%.4fus\n",
                 spec.rules, m.num_tuples,
                 m.tuple_engine ? "tuple" : "linear", m.costs.hit_us,
                 m.costs.probe_us, m.costs.per_rule_us);
  }

  if (shard.cores == 1 && shard.arrival_us == 0) {
    harness::FleetRunSpec rs;
    rs.common.workers = common.workers;
    rs.common.out_path = common.out;
    rs.rows = {spec};
    rs.costs = costs;
    harness::Outcome o;
    try {
      o = harness::run(rs);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fleet: %s\n", e.what());
      return 1;
    }
    const harness::FleetResult& r = o.fleet.front();
    if (common.json) {
      o.section.dump(std::cout);
      std::cout << "\n";
      return 0;
    }

    std::printf(
        "%s conns=%zu packets=%llu batch=%zu zipf=%.2f seed=%llu cap=%zu "
        "churn=%llu\n",
        spec.label.c_str(), spec.connections,
        static_cast<unsigned long long>(spec.packets), spec.batch, spec.zipf_s,
        static_cast<unsigned long long>(spec.seed), spec.cache_capacity,
        static_cast<unsigned long long>(spec.churn_every));
    std::printf(
        "  sampled=%llu (scheduled=%llu handshake=%llu dropped=%llu) "
        "bursts=%llu\n",
        static_cast<unsigned long long>(r.packets_sampled),
        static_cast<unsigned long long>(r.scheduled_sampled),
        static_cast<unsigned long long>(r.handshake_sampled),
        static_cast<unsigned long long>(r.dropped_in_churn),
        static_cast<unsigned long long>(r.bursts));
    std::printf(
        "  hit=%.4f stale=%.4f slow=%llu churns=%llu lookup_cost=%.2fus\n",
        r.cache.hit_ratio(), r.cache.stale_ratio(),
        static_cast<unsigned long long>(r.slow_packets),
        static_cast<unsigned long long>(r.churns), r.cache.cost_us);
    std::printf(
        "  latency_us p50=%.2f p90=%.2f p99=%.2f p999=%.2f mean=%.2f "
        "max=%.2f\n",
        r.latency.p50, r.latency.p90, r.latency.p99, r.latency.p999,
        r.latency.mean, r.latency.max);
    std::printf("  costs controller=%.1fus fast[0]=%.3fus slow[0]=%.3fus\n",
                costs.controller_us, costs.fast_us.front(),
                costs.slow_us.front());
    for (std::size_t p = 1; p < costs.positions(); ++p) {
      std::printf("        fast[%zu]=%.3fus slow[%zu]=%.3fus\n", p,
                  costs.fast_us[p], p, costs.slow_us[p]);
    }
    std::printf("  digest=%016llx\n",
                static_cast<unsigned long long>(r.sample_digest));
    return 0;
  }

  // Sharded path.
  shard.fleet = spec;
  harness::ShardRunSpec rs;
  rs.common.workers = common.workers;
  rs.common.out_path = common.out;
  rs.rows = {shard};
  rs.costs = costs;
  harness::Outcome o;
  try {
    o = harness::run(rs);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet: %s\n", e.what());
    return 1;
  }
  const harness::ShardResult& r = o.shard.front();
  if (common.json) {
    o.section.dump(std::cout);
    std::cout << "\n";
    return r.conserved ? 0 : 1;
  }

  std::printf(
      "%s cores=%zu steering=%s conns=%zu packets=%llu batch=%zu zipf=%.2f "
      "seed=%llu cap=%zu churn=%llu arrival_us=%.2f\n",
      spec.label.c_str(), shard.cores, harness::to_string(shard.steering),
      spec.connections, static_cast<unsigned long long>(spec.packets),
      spec.batch, spec.zipf_s, static_cast<unsigned long long>(spec.seed),
      spec.cache_capacity, static_cast<unsigned long long>(spec.churn_every),
      shard.arrival_us);
  std::printf(
      "  sampled=%llu (scheduled=%llu handshake=%llu dropped=%llu) "
      "bursts=%llu hit=%.4f slow=%llu churns=%llu\n",
      static_cast<unsigned long long>(r.packets_sampled),
      static_cast<unsigned long long>(r.scheduled_sampled),
      static_cast<unsigned long long>(r.handshake_sampled),
      static_cast<unsigned long long>(r.dropped_in_churn),
      static_cast<unsigned long long>(r.bursts), r.cache.hit_ratio(),
      static_cast<unsigned long long>(r.slow_packets),
      static_cast<unsigned long long>(r.churns));
  std::printf(
      "  service_us p50=%.2f p99=%.2f p999=%.2f mean=%.2f  "
      "sojourn_us p50=%.2f p99=%.2f p999=%.2f\n",
      r.latency.p50, r.latency.p99, r.latency.p999, r.latency.mean,
      r.sojourn.p50, r.sojourn.p99, r.sojourn.p999);
  std::printf(
      "  makespan=%.1fus throughput=%.4fMpps hot_core=%u conserved=%d\n",
      r.makespan_us, r.throughput_mpps, r.hot_core, r.conserved ? 1 : 0);
  for (const harness::ShardCoreStats& c : r.cores) {
    std::printf(
        "  core %u: flows=%zu sampled=%llu util=%.3f service_p999=%.2f "
        "sojourn_p999=%.2f max_wait=%.2f digest=%016llx\n",
        c.core, c.flows, static_cast<unsigned long long>(c.packets_sampled),
        c.utilization, c.service.p999, c.sojourn.p999, c.max_wait_us,
        static_cast<unsigned long long>(c.sample_digest));
  }
  std::printf("  digest=%016llx\n",
              static_cast<unsigned long long>(r.sample_digest));
  return r.conserved ? 0 : 1;
}
