// Fleet CLI: run one flow-cache fleet row and print its stats + digest.
//
//   fleet [--burst N] [tcp|rpc] [scheme] [connections] [packets] [zipf_s]
//         [seed] [capacity] [churn_every]
//
// `scheme` is one-behind | direct | lru.  Prints per-scheme hit/stale
// ratios, the per-packet latency percentiles, and the FNV-1a sample digest
// (compare digests across hosts/worker counts to check determinism).
//
// `--burst N` sends N back-to-back packets per scheduled flow draw
// (per-flow coalescing); packets after the first in a burst are priced at
// their burst position from the position-indexed cost table, so they pay
// the amortized cost of the cache residue their predecessors left behind.
// The default (no flag) is batch 1 — every packet is an independent
// first-in-burst activation, byte-identical to the pre-burst engine.
// Exit status is 0 on success, 2 on usage errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "harness/fleet.h"

int main(int argc, char** argv) {
  using namespace l96;

  harness::FleetSpec spec;
  spec.kind = net::StackKind::kTcpIp;
  spec.config = code::StackConfig::All();
  spec.scheme = code::FlowCacheScheme::kLru;
  spec.connections = 8;
  spec.packets = 128;
  spec.batch = 1;
  spec.zipf_s = 1.1;
  spec.seed = 1;
  spec.cache_capacity = 8;
  spec.churn_every = 0;

  const auto usage = [] {
    std::fprintf(stderr,
                 "usage: fleet [--burst N] [tcp|rpc] [one-behind|direct|lru] "
                 "[connections] [packets] [zipf_s] [seed] [capacity] "
                 "[churn_every]\n");
    return 2;
  };

  // Strip the --burst flag (anywhere) before positional parsing.
  std::vector<char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--burst") == 0) {
      if (i + 1 >= argc) return usage();
      spec.batch = std::strtoull(argv[++i], nullptr, 10);
      if (spec.batch == 0) return usage();
    } else {
      args.push_back(argv[i]);
    }
  }

  if (args.size() > 0) {
    if (std::strcmp(args[0], "rpc") == 0) {
      spec.kind = net::StackKind::kRpc;
    } else if (std::strcmp(args[0], "tcp") != 0) {
      return usage();
    }
  }
  if (args.size() > 1) {
    const auto s = code::flow_cache_scheme_from_string(args[1]);
    if (!s) return usage();
    spec.scheme = *s;
  }
  if (args.size() > 2) spec.connections = std::strtoull(args[2], nullptr, 10);
  if (args.size() > 3) spec.packets = std::strtoull(args[3], nullptr, 10);
  if (args.size() > 4) spec.zipf_s = std::strtod(args[4], nullptr);
  if (args.size() > 5) spec.seed = std::strtoull(args[5], nullptr, 10);
  if (args.size() > 6) spec.cache_capacity = std::strtoull(args[6], nullptr, 10);
  if (args.size() > 7) spec.churn_every = std::strtoull(args[7], nullptr, 10);
  if (spec.connections == 0 || spec.packets == 0 ||
      spec.cache_capacity == 0) {
    return usage();
  }
  spec.label = std::string(spec.kind == net::StackKind::kRpc ? "rpc" : "tcp") +
               "/" + code::to_string(spec.scheme);

  // Positions converge within a few packets; 8 table entries cover any
  // batch size (fast_at/slow_at clamp to the steady-amortized floor).
  const std::size_t positions = std::min<std::size_t>(spec.batch, 8);
  const harness::BurstCostTable costs =
      harness::measure_burst_costs(spec.kind, spec.config, positions);
  const harness::FleetResult r = harness::run_fleet(spec, costs);

  std::printf(
      "%s conns=%zu packets=%llu batch=%zu zipf=%.2f seed=%llu cap=%zu "
      "churn=%llu\n",
      spec.label.c_str(), spec.connections,
      static_cast<unsigned long long>(spec.packets), spec.batch, spec.zipf_s,
      static_cast<unsigned long long>(spec.seed), spec.cache_capacity,
      static_cast<unsigned long long>(spec.churn_every));
  std::printf(
      "  sampled=%llu (scheduled=%llu handshake=%llu dropped=%llu) "
      "bursts=%llu\n",
      static_cast<unsigned long long>(r.packets_sampled),
      static_cast<unsigned long long>(r.scheduled_sampled),
      static_cast<unsigned long long>(r.handshake_sampled),
      static_cast<unsigned long long>(r.dropped_in_churn),
      static_cast<unsigned long long>(r.bursts));
  std::printf(
      "  hit=%.4f stale=%.4f slow=%llu churns=%llu lookup_cost=%.2fus\n",
      r.cache.hit_ratio(), r.cache.stale_ratio(),
      static_cast<unsigned long long>(r.slow_packets),
      static_cast<unsigned long long>(r.churns), r.cache.cost_us);
  std::printf(
      "  latency_us p50=%.2f p90=%.2f p99=%.2f p999=%.2f mean=%.2f "
      "max=%.2f\n",
      r.latency.p50, r.latency.p90, r.latency.p99, r.latency.p999,
      r.latency.mean, r.latency.max);
  std::printf("  costs controller=%.1fus fast[0]=%.3fus slow[0]=%.3fus\n",
              costs.controller_us, costs.fast_us.front(),
              costs.slow_us.front());
  for (std::size_t p = 1; p < costs.positions(); ++p) {
    std::printf("        fast[%zu]=%.3fus slow[%zu]=%.3fus\n", p,
                costs.fast_us[p], p, costs.slow_us[p]);
  }
  std::printf("  digest=%016llx\n",
              static_cast<unsigned long long>(r.sample_digest));
  return 0;
}
