// Fleet CLI: run one flow-cache fleet row and print its stats + digest.
//
//   fleet [tcp|rpc] [scheme] [connections] [packets] [zipf_s] [seed]
//         [capacity] [churn_every]
//
// `scheme` is one-behind | direct | lru.  Prints per-scheme hit/stale
// ratios, the per-packet latency percentiles, and the FNV-1a sample digest
// (compare digests across hosts/worker counts to check determinism).
// Exit status is 0 on success, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "harness/fleet.h"

int main(int argc, char** argv) {
  using namespace l96;

  harness::FleetSpec spec;
  spec.kind = net::StackKind::kTcpIp;
  spec.config = code::StackConfig::All();
  spec.scheme = code::FlowCacheScheme::kLru;
  spec.connections = 8;
  spec.packets = 128;
  spec.zipf_s = 1.1;
  spec.seed = 1;
  spec.cache_capacity = 8;
  spec.churn_every = 0;

  const auto usage = [] {
    std::fprintf(stderr,
                 "usage: fleet [tcp|rpc] [one-behind|direct|lru] "
                 "[connections] [packets] [zipf_s] [seed] [capacity] "
                 "[churn_every]\n");
    return 2;
  };

  if (argc > 1) {
    if (std::strcmp(argv[1], "rpc") == 0) {
      spec.kind = net::StackKind::kRpc;
    } else if (std::strcmp(argv[1], "tcp") != 0) {
      return usage();
    }
  }
  if (argc > 2) {
    const auto s = code::flow_cache_scheme_from_string(argv[2]);
    if (!s) return usage();
    spec.scheme = *s;
  }
  if (argc > 3) spec.connections = std::strtoull(argv[3], nullptr, 10);
  if (argc > 4) spec.packets = std::strtoull(argv[4], nullptr, 10);
  if (argc > 5) spec.zipf_s = std::strtod(argv[5], nullptr);
  if (argc > 6) spec.seed = std::strtoull(argv[6], nullptr, 10);
  if (argc > 7) spec.cache_capacity = std::strtoull(argv[7], nullptr, 10);
  if (argc > 8) spec.churn_every = std::strtoull(argv[8], nullptr, 10);
  if (spec.connections == 0 || spec.packets == 0 ||
      spec.cache_capacity == 0) {
    return usage();
  }
  spec.label = std::string(spec.kind == net::StackKind::kRpc ? "rpc" : "tcp") +
               "/" + code::to_string(spec.scheme);

  const harness::FleetCosts costs =
      harness::measure_fleet_costs(spec.kind, spec.config);
  const harness::FleetResult r = harness::run_fleet(spec, costs);

  std::printf(
      "%s conns=%zu packets=%llu zipf=%.2f seed=%llu cap=%zu churn=%llu\n",
      spec.label.c_str(), spec.connections,
      static_cast<unsigned long long>(spec.packets), spec.zipf_s,
      static_cast<unsigned long long>(spec.seed), spec.cache_capacity,
      static_cast<unsigned long long>(spec.churn_every));
  std::printf(
      "  sampled=%llu hit=%.4f stale=%.4f slow=%llu churns=%llu "
      "lookup_cost=%.2fus\n",
      static_cast<unsigned long long>(r.packets_sampled),
      r.cache.hit_ratio(), r.cache.stale_ratio(),
      static_cast<unsigned long long>(r.slow_packets),
      static_cast<unsigned long long>(r.churns), r.cache.cost_us);
  std::printf(
      "  latency_us p50=%.2f p90=%.2f p99=%.2f p999=%.2f mean=%.2f "
      "max=%.2f\n",
      r.latency.p50, r.latency.p90, r.latency.p99, r.latency.p999,
      r.latency.mean, r.latency.max);
  std::printf("  costs fast=%.3fus slow=%.3fus controller=%.1fus\n",
              costs.fast_us, costs.slow_us, costs.controller_us);
  std::printf("  digest=%016llx\n",
              static_cast<unsigned long long>(r.sample_digest));
  return 0;
}
